// Small-buffer-optimized move-only callable: the event engine's closure type.
//
// `std::function` is copyable, which forces every capture to be copyable and
// (for larger captures) heap-allocated; the simulator schedules millions of
// closures per run and never copies one. InlineCallback stores captures up to
// kInlineSize bytes directly inside the object (no allocation on the
// scheduling hot path) and falls back to the heap only for oversized,
// over-aligned, or throwing-move captures. Move-only callables (e.g. lambdas
// capturing a unique_ptr) are supported.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace memca {

class InlineCallback {
 public:
  /// Captures up to this many bytes live inline; larger callables go to the
  /// heap. 32 B fits the simulator's usual "this pointer + a few scalars"
  /// closures while keeping sizeof(InlineCallback) at 56 so the event slot
  /// (callback + generation word) is exactly one 64 B cache line.
  static constexpr std::size_t kInlineSize = 32;

  InlineCallback() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and stores `f` in place — the
  /// scheduling hot path, which constructs the closure directly inside a
  /// recycled event slot instead of moving a temporary in.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    destroy();
    init(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { destroy(); }

  /// Invokes the stored callable; the callback must be non-empty.
  void operator()() {
    MEMCA_DCHECK(invoke_ != nullptr);
    invoke_(storage_);
  }

  /// True if a callable is stored.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the stored callable (if any), leaving the callback empty.
  /// Cheaper than assigning a default-constructed InlineCallback.
  void reset() noexcept { destroy(); }

  /// True if the capture lives in the inline buffer (introspection for tests
  /// and benchmarks; an empty callback reports false).
  bool is_inline() const { return invoke_ != nullptr && !heap_; }

 private:
  enum class Op { kDestroy, kMoveTo };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, unsigned char* self, unsigned char* dest);

  template <typename F, typename D = std::decay_t<F>>
  void init(F&& f) {
    constexpr bool fits_inline = sizeof(D) <= kInlineSize &&
                                 alignof(D) <= alignof(void*) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* storage) { (*static_cast<D*>(static_cast<void*>(storage)))(); };
      // Trivially-copyable captures (the common "this pointer + scalars"
      // case) need no manager: moving is a memcpy, destroying a no-op.
      if constexpr (std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
        manage_ = nullptr;
      } else {
        manage_ = &manage_inline<D>;
      }
      heap_ = false;
    } else {
      D* owned = new D(std::forward<F>(f));
      std::memcpy(storage_, &owned, sizeof(owned));
      invoke_ = [](void* storage) {
        D* target;
        std::memcpy(&target, storage, sizeof(target));
        (*target)();
      };
      manage_ = &manage_heap<D>;
      heap_ = true;
    }
  }

  template <typename D>
  static void manage_inline(Op op, unsigned char* self, unsigned char* dest) {
    D* payload = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dest)) D(std::move(*payload));
    }
    payload->~D();
  }

  template <typename D>
  static void manage_heap(Op op, unsigned char* self, unsigned char* dest) {
    D* payload;
    std::memcpy(&payload, self, sizeof(payload));
    if (op == Op::kMoveTo) {
      std::memcpy(dest, &payload, sizeof(payload));  // transfer ownership
    } else {
      delete payload;
    }
  }

  void steal(InlineCallback& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineSize);  // trivial (or empty) payload
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
    heap_ = false;
  }

  alignas(void*) unsigned char storage_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool heap_ = false;
};

}  // namespace memca
