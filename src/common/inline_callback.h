// Small-buffer-optimized move-only callables: the hot-path closure types.
//
// `std::function` is copyable, which forces every capture to be copyable and
// (for larger captures) heap-allocated; the simulator schedules millions of
// closures per run and never copies one, and the queueing layer delivers a
// completion/drop/reply callback per request hop. InlineFunction<void(Args…)>
// stores captures up to kInlineSize bytes directly inside the object (no
// allocation on the scheduling hot path) and falls back to the heap only for
// oversized, over-aligned, or throwing-move captures. Move-only callables
// (e.g. lambdas capturing a unique_ptr) are supported.
//
// InlineCallback is the nullary instantiation the event engine stores in its
// one-cache-line event slots.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace memca {

template <typename Signature>
class InlineFunction;  // only the void(Args...) partial specialization exists

template <typename... Args>
class InlineFunction<void(Args...)> {
 public:
  /// Captures up to this many bytes live inline; larger callables go to the
  /// heap. 32 B fits the usual "this pointer + a few scalars" closures while
  /// keeping sizeof(InlineFunction) at 56 so the simulator's event slot
  /// (callback + generation word) is exactly one 64 B cache line.
  static constexpr std::size_t kInlineSize = 32;

  InlineFunction() = default;
  /// Allows callers that used to pass a null std::function to keep writing
  /// `nullptr` for "no callback".
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and stores `f` in place — the
  /// scheduling hot path, which constructs the closure directly inside a
  /// recycled event slot instead of moving a temporary in.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&, Args...>>>
  void emplace(F&& f) {
    destroy();
    init(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { destroy(); }

  /// Invokes the stored callable; the callback must be non-empty.
  void operator()(Args... args) {
    MEMCA_DCHECK(invoke_ != nullptr);
    invoke_(storage_, std::forward<Args>(args)...);
  }

  /// True if a callable is stored.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the stored callable (if any), leaving the callback empty.
  /// Cheaper than assigning a default-constructed InlineFunction.
  void reset() noexcept { destroy(); }

  /// True if the capture lives in the inline buffer (introspection for tests
  /// and benchmarks; an empty callback reports false).
  bool is_inline() const { return invoke_ != nullptr && !heap_; }

  /// True if the stored state (including "empty") can be relocated or
  /// duplicated with a raw byte copy: either no callable is stored, or the
  /// capture is inline, trivially copyable, and trivially destructible. The
  /// snapshot engine checkpoints event-slot arenas with memcpy and requires
  /// every live closure to satisfy this.
  bool is_trivially_relocatable() const { return manage_ == nullptr; }

 private:
  enum class Op { kDestroy, kMoveTo };
  using InvokeFn = void (*)(void*, Args...);
  using ManageFn = void (*)(Op, unsigned char* self, unsigned char* dest);

  template <typename F, typename D = std::decay_t<F>>
  void init(F&& f) {
    constexpr bool fits_inline = sizeof(D) <= kInlineSize &&
                                 alignof(D) <= alignof(void*) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* storage, Args... args) {
        (*static_cast<D*>(static_cast<void*>(storage)))(std::forward<Args>(args)...);
      };
      // Trivially-copyable captures (the common "this pointer + scalars"
      // case) need no manager: moving is a memcpy, destroying a no-op.
      if constexpr (std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
        manage_ = nullptr;
      } else {
        manage_ = &manage_inline<D>;
      }
      heap_ = false;
    } else {
      D* owned = new D(std::forward<F>(f));
      std::memcpy(storage_, &owned, sizeof(owned));
      invoke_ = [](void* storage, Args... args) {
        D* target;
        std::memcpy(&target, storage, sizeof(target));
        (*target)(std::forward<Args>(args)...);
      };
      manage_ = &manage_heap<D>;
      heap_ = true;
    }
  }

  template <typename D>
  static void manage_inline(Op op, unsigned char* self, unsigned char* dest) {
    D* payload = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dest)) D(std::move(*payload));
    }
    payload->~D();
  }

  template <typename D>
  static void manage_heap(Op op, unsigned char* self, unsigned char* dest) {
    D* payload;
    std::memcpy(&payload, self, sizeof(payload));
    if (op == Op::kMoveTo) {
      std::memcpy(dest, &payload, sizeof(payload));  // transfer ownership
    } else {
      delete payload;
    }
  }

  void steal(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineSize);  // trivial (or empty) payload
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
    heap_ = false;
  }

  alignas(void*) unsigned char storage_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool heap_ = false;
};

/// The event engine's nullary closure type (see Simulator::Slot).
using InlineCallback = InlineFunction<void()>;

}  // namespace memca
