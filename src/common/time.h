// Simulated-time primitives.
//
// All simulation time in this project is expressed as a signed 64-bit count
// of microseconds (`SimTime`). Integer time keeps the discrete-event engine
// fully deterministic (no floating-point event-ordering ambiguity) while a
// microsecond tick is fine enough for the sub-millisecond service times the
// MemCA model cares about.
#pragma once

#include <cstdint>
#include <string>

namespace memca {

/// Simulated time or duration, in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1'000;
inline constexpr SimTime kSecond = 1'000'000;
inline constexpr SimTime kMinute = 60 * kSecond;

/// Builds a SimTime from microseconds.
constexpr SimTime usec(std::int64_t n) { return n * kMicrosecond; }
/// Builds a SimTime from milliseconds.
constexpr SimTime msec(std::int64_t n) { return n * kMillisecond; }
/// Builds a SimTime from whole seconds.
constexpr SimTime sec(std::int64_t n) { return n * kSecond; }
/// Builds a SimTime from fractional seconds (rounds to nearest microsecond).
constexpr SimTime sec(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Converts a SimTime to fractional seconds (for reporting / math only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a SimTime to fractional milliseconds (for reporting / math only).
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Formats a time as e.g. "1.234s" or "250ms" for logs and tables.
std::string format_time(SimTime t);

}  // namespace memca
