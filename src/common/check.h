// Lightweight contract checking (Expects/Ensures in Core Guidelines terms).
//
// MEMCA_CHECK is always on (the simulation is cheap relative to the cost of
// silently corrupt state); MEMCA_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace memca::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "MEMCA_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}
}  // namespace memca::detail

#define MEMCA_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::memca::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MEMCA_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) ::memca::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MEMCA_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define MEMCA_DCHECK(expr) MEMCA_CHECK(expr)
#endif
