// Deterministic, forkable random number generation.
//
// Every simulation component draws from its own `Rng` forked from a parent
// with a string label. Forking hashes the label into the child seed, so the
// stream a component sees depends only on (root seed, fork path) — adding or
// reordering unrelated components never perturbs another component's draws.
// This is what makes scenario runs reproducible and diffable.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace memca {

/// SplitMix64 step; used both as a seed scrambler and for label hashing.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  /// Creates a root generator from a user seed.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; identical (seed, label) pairs give
  /// identical streams.
  Rng fork(std::string_view label) const;

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);
  /// Exponentially distributed duration with the given mean duration.
  SimTime exponential_time(SimTime mean);
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);
  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean);
  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace memca
