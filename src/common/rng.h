// Deterministic, forkable random number generation.
//
// Every simulation component draws from its own `Rng` forked from a parent
// with a string label. Forking hashes the label into the child seed, so the
// stream a component sees depends only on (root seed, fork path) — adding or
// reordering unrelated components never perturbs another component's draws.
// This is what makes scenario runs reproducible and diffable.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca {

/// SplitMix64 step; used both as a seed scrambler and for label hashing.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  /// Creates a root generator from a user seed.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; identical (seed, label) pairs give
  /// identical streams.
  Rng fork(std::string_view label) const;

  // The distribution helpers below are defined inline: the closed-loop
  // testbed draws tens of thousands of variates per simulated second, and
  // the per-draw distribution objects are stateless wrappers the compiler
  // folds away entirely once it can see through them. The arithmetic is
  // exactly what the out-of-line versions performed, so the streams are
  // bit-identical.

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    MEMCA_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MEMCA_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    MEMCA_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Exponentially distributed duration with the given mean duration.
  SimTime exponential_time(SimTime mean) {
    MEMCA_CHECK_MSG(mean > 0, "exponential_time mean must be positive");
    const double draw = exponential(static_cast<double>(mean));
    return static_cast<SimTime>(std::llround(draw));
  }
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p) {
    MEMCA_DCHECK(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }
  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean);
  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    MEMCA_CHECK_MSG(!weights.empty(), "weighted_index needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
      MEMCA_DCHECK(w >= 0.0);
      total += w;
    }
    MEMCA_CHECK_MSG(total > 0.0, "weights must not all be zero");
    double draw = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw < 0.0) return i;
    }
    return weights.size() - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace memca
