// Deterministic, forkable random number generation.
//
// Every simulation component draws from its own `Rng` forked from a parent
// with a string label. Forking hashes the label into the child seed, so the
// stream a component sees depends only on (root seed, fork path) — adding or
// reordering unrelated components never perturbs another component's draws.
// This is what makes scenario runs reproducible and diffable.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca {

/// SplitMix64 step; used both as a seed scrambler and for label hashing.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  /// Creates a root generator from a user seed.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; identical (seed, label) pairs give
  /// identical streams.
  Rng fork(std::string_view label) const;

  // The distribution helpers below are defined inline: the closed-loop
  // testbed draws tens of thousands of variates per simulated second, and
  // the per-draw distribution objects are stateless wrappers the compiler
  // folds away entirely once it can see through them. The arithmetic is
  // exactly what the out-of-line versions performed, so the streams are
  // bit-identical.

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    MEMCA_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MEMCA_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    MEMCA_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Exponentially distributed duration with the given mean duration.
  SimTime exponential_time(SimTime mean) {
    MEMCA_CHECK_MSG(mean > 0, "exponential_time mean must be positive");
    const double draw = exponential(static_cast<double>(mean));
    return static_cast<SimTime>(std::llround(draw));
  }
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p) {
    MEMCA_DCHECK(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }
  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean);
  /// Binomial count of successes in `n` trials of probability `p`. The
  /// cohort scheduler draws one of these per (page class, tick) instead of
  /// one exponential timer per user, so like the other helpers it is inline
  /// and allocation-free.
  std::int64_t binomial(std::int64_t n, double p) {
    MEMCA_DCHECK(n >= 0);
    MEMCA_DCHECK(p >= 0.0 && p <= 1.0);
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    return std::binomial_distribution<std::int64_t>(n, p)(engine_);
  }
  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    MEMCA_CHECK_MSG(!weights.empty(), "weighted_index needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
      MEMCA_DCHECK(w >= 0.0);
      total += w;
    }
    MEMCA_CHECK_MSG(total > 0.0, "weights must not all be zero");
    double draw = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw < 0.0) return i;
    }
    return weights.size() - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Zipf-distributed rank sampler over [0, n) with skew theta in [0, 1):
/// P(rank = i) ∝ 1 / (i + 1)^theta, so rank 0 is the hottest record.
///
/// Uses the Gray et al. ("Quickly generating billion-record synthetic
/// databases") rejection-free construction: the two hottest ranks are drawn
/// exactly from the CDF and the rest through a continuous-power
/// approximation, making a draw one uniform plus one pow() regardless of n.
/// This is the sampler the OLTP tier pulls record ids from, so its cost is
/// paid once per transaction operation. The zeta_n normalizer is O(n) to
/// compute; precompute it once (compute_zetan) when many samplers share one
/// table size, the oltp-cc-bench idiom.
///
/// The sampler is stateless: all randomness comes from the Rng passed to
/// operator(), so checkpointing the Rng checkpoints the stream.
class FastZipf {
 public:
  FastZipf(double theta, std::uint64_t n) : FastZipf(theta, n, compute_zetan(theta, n)) {}

  FastZipf(double theta, std::uint64_t n, double zetan)
      : n_(n), theta_(theta), zetan_(zetan) {
    MEMCA_CHECK_MSG(n >= 1, "FastZipf needs a non-empty key space");
    MEMCA_CHECK_MSG(theta >= 0.0 && theta < 1.0, "FastZipf skew must be in [0, 1)");
    alpha_ = 1.0 / (1.0 - theta);
    const double zeta2 = 1.0 + std::pow(0.5, theta);
    // n == 1 degenerates (zetan == zeta2 at n == 2 would divide by zero for
    // n == 1's zetan == 1); operator() short-circuits before eta_ is used.
    eta_ = n > 1 ? (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                       (1.0 - zeta2 / zetan_)
                 : 0.0;
    threshold1_ = 1.0 / zetan_;
    threshold2_ = (1.0 + std::pow(0.5, theta)) / zetan_;
  }

  /// zeta_n = sum_{i=1..n} i^-theta, the Zipf CDF normalizer.
  static double compute_zetan(double theta, std::uint64_t n) {
    double zetan = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      zetan += std::pow(1.0 / static_cast<double>(i), theta);
    }
    return zetan;
  }

  /// Draws one rank in [0, n).
  std::uint64_t operator()(Rng& rng) const {
    if (n_ == 1) return 0;
    const double u = rng.uniform();
    if (u < threshold1_) return 0;
    if (u < threshold2_) return 1;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank < n_ ? rank : n_ - 1;
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  double zetan() const { return zetan_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  /// Exact CDF cut-offs for ranks 0 and 1 (u < t1 -> 0, u < t2 -> 1).
  double threshold1_ = 0.0;
  double threshold2_ = 0.0;
};

}  // namespace memca
