// Minimal leveled logging.
//
// Quiet by default (warnings and errors only) so bench output stays clean;
// tests and examples can raise verbosity. The level filter is atomic so
// parallel sweep cells may log concurrently; each simulator itself remains
// single-threaded and deterministic. Lines from concurrent cells may
// interleave — set the level before starting a sweep.
#pragma once

#include <sstream>
#include <string>

namespace memca {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line if `level` passes the global filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace memca

#define MEMCA_LOG(level) ::memca::detail::LogLine(::memca::LogLevel::level)
