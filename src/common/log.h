// Minimal leveled logging.
//
// Quiet by default (warnings and errors only) so bench output stays clean;
// tests and examples can raise verbosity. The level filter is atomic so
// parallel sweep cells may log concurrently; each simulator itself remains
// single-threaded and deterministic. Lines from concurrent cells may
// interleave — set the level before starting a sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace memca {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for emitted log lines. Receives only lines that passed the
/// level filter. Must be callable from any thread (parallel sweep cells log
/// concurrently); the default sink writes "[LEVEL] message" to stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the global sink (empty restores the stderr default). Install
/// before starting a sweep — swapping while other threads log is a race,
/// same rule as set_log_level.
void set_log_sink(LogSink sink);

/// Emits one log line if `level` passes the global filter.
void log_message(LogLevel level, const std::string& message);

/// Counts warn/error lines emitted by the *current thread* while in scope.
/// Scopes nest (an inner scope's lines count in the outer one too), and a
/// sweep cell that creates one sees exactly its own lines because each cell
/// runs entirely on one worker thread. The metrics layer uses this to put
/// "this run logged N warnings" into every run report.
class ScopedLogCounter {
 public:
  ScopedLogCounter();
  ~ScopedLogCounter();
  ScopedLogCounter(const ScopedLogCounter&) = delete;
  ScopedLogCounter& operator=(const ScopedLogCounter&) = delete;

  std::int64_t warnings() const { return warnings_; }
  std::int64_t errors() const { return errors_; }

  /// Checkpoint support: the counters are plain per-thread state, so a
  /// rollback restores the counts observed at capture time. The thread-local
  /// scope chain itself is not snapshotted — a checkpointed world must be
  /// captured and restored on the thread that owns its counter.
  struct Snapshot {
    std::int64_t warnings = 0;
    std::int64_t errors = 0;
  };

  void capture(Snapshot& out) const {
    out.warnings = warnings_;
    out.errors = errors_;
  }

  void restore(const Snapshot& snap) {
    warnings_ = snap.warnings;
    errors_ = snap.errors;
  }

 private:
  friend void log_message(LogLevel, const std::string&);

  ScopedLogCounter* prev_ = nullptr;
  std::int64_t warnings_ = 0;
  std::int64_t errors_ = 0;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace memca

#define MEMCA_LOG(level) ::memca::detail::LogLine(::memca::LogLevel::level)
