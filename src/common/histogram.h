// Latency histogram with percentile queries.
//
// Log-bucketed (HDR-style) recorder: values are grouped into buckets whose
// width grows geometrically, giving ~1% relative error across nine decades
// while using a few KB. Used for per-tier and client response-time tails,
// where the interesting statistics are p95/p98/p99-style quantiles.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (negative values are clamped to zero). Defined
  /// inline: tiers and clients record on every completion, and the bucket
  /// update is a handful of instructions once the call overhead is gone.
  void record(SimTime value) { record_n(value, 1); }
  /// Records one value `count` times.
  void record_n(SimTime value, std::int64_t count) {
    MEMCA_CHECK_MSG(count >= 0, "cannot record a negative count");
    if (count == 0) return;
    if (value < 0) value = 0;
    const std::size_t idx = bucket_index(value);
    buckets_[idx] += count;
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    count_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
  }

  /// Number of recorded values.
  std::int64_t count() const { return count_; }
  /// True if nothing has been recorded.
  bool empty() const { return count_ == 0; }

  /// Value at quantile q in [0, 1]; returns 0 on an empty histogram.
  /// The result is the upper edge of the bucket containing the quantile,
  /// so `quantile(1.0) >= max recorded value` within bucket resolution.
  SimTime quantile(double q) const;

  /// Arithmetic mean of recorded values (bucket-midpoint approximation).
  double mean() const;
  /// Largest recorded value (exact).
  SimTime max() const { return max_; }
  /// Smallest recorded value (exact).
  SimTime min() const { return empty() ? 0 : min_; }

  /// Merges another histogram into this one.
  void merge(const LatencyHistogram& other);
  /// Clears all recorded values.
  void reset();

  /// Fraction of recorded values strictly greater than `threshold`.
  double fraction_above(SimTime threshold) const;

 private:
  // Sub-buckets per power-of-two decade: 2^6 = 64 gives ~1.6% worst-case
  // relative bucket width, ample for percentile reporting.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBucketBits;
  // Values up to 2^40 us (~12.7 days) are representable before clamping.
  static constexpr int kMaxExponent = 40;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExponent + 1) * static_cast<std::size_t>(kSubBuckets);

  static std::size_t bucket_index(SimTime value) {
    if (value < 0) value = 0;
    const auto v = static_cast<std::uint64_t>(value);
    if (v < static_cast<std::uint64_t>(kSubBuckets)) {
      return static_cast<std::size_t>(v);
    }
    // Indices [0, kSubBuckets) store exact small values; decade d >= 0
    // (bucket width 2^d) covers [kSubBuckets << d, kSubBuckets << (d+1)) at
    // indices [kSubBuckets + d*kSubBuckets, kSubBuckets + (d+1)*kSubBuckets).
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;  // == decade
    const auto sub = static_cast<std::int64_t>(v >> shift) - kSubBuckets;  // in [0, kSubBuckets)
    std::size_t idx = static_cast<std::size_t>(kSubBuckets) +
                      static_cast<std::size_t>(shift) * kSubBuckets +
                      static_cast<std::size_t>(sub);
    if (idx >= kNumBuckets) idx = kNumBuckets - 1;
    return idx;
  }
  static SimTime bucket_upper(std::size_t index);
  static SimTime bucket_mid(std::size_t index);

  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  SimTime min_ = 0;
  SimTime max_ = 0;
  double sum_ = 0.0;
};

}  // namespace memca
