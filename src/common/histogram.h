// Latency histogram with percentile queries.
//
// Log-bucketed (HDR-style) recorder: values are grouped into buckets whose
// width grows geometrically, giving ~1% relative error across nine decades
// while using a few KB. Used for per-tier and client response-time tails,
// where the interesting statistics are p95/p98/p99-style quantiles.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace memca {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (negative values are clamped to zero).
  void record(SimTime value);
  /// Records one value `count` times.
  void record_n(SimTime value, std::int64_t count);

  /// Number of recorded values.
  std::int64_t count() const { return count_; }
  /// True if nothing has been recorded.
  bool empty() const { return count_ == 0; }

  /// Value at quantile q in [0, 1]; returns 0 on an empty histogram.
  /// The result is the upper edge of the bucket containing the quantile,
  /// so `quantile(1.0) >= max recorded value` within bucket resolution.
  SimTime quantile(double q) const;

  /// Arithmetic mean of recorded values (bucket-midpoint approximation).
  double mean() const;
  /// Largest recorded value (exact).
  SimTime max() const { return max_; }
  /// Smallest recorded value (exact).
  SimTime min() const { return empty() ? 0 : min_; }

  /// Merges another histogram into this one.
  void merge(const LatencyHistogram& other);
  /// Clears all recorded values.
  void reset();

  /// Fraction of recorded values strictly greater than `threshold`.
  double fraction_above(SimTime threshold) const;

 private:
  static std::size_t bucket_index(SimTime value);
  static SimTime bucket_upper(std::size_t index);
  static SimTime bucket_mid(std::size_t index);

  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  SimTime min_ = 0;
  SimTime max_ = 0;
  double sum_ = 0.0;
};

}  // namespace memca
