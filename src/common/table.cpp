#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace memca {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MEMCA_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MEMCA_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) rule += std::string(widths[c] + 2, '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace memca
