// Time-windowed quantile tracking.
//
// Maintains a ring of per-window latency histograms so callers can query
// "the p95 over the last W seconds" cheaply and continuously — the metric
// every SLO dashboard actually plots, and what the MemCA prober/commander
// reason about. Unlike the prober's raw sample window, this scales to the
// full client stream (HDR buckets, no per-sample storage).
#pragma once

#include <vector>

#include "common/histogram.h"
#include "common/time.h"

namespace memca {

class WindowedQuantile {
 public:
  /// Tracks values in `num_windows` rotating windows of `window` each; a
  /// query aggregates the most recent `num_windows` windows (~the last
  /// num_windows * window of data).
  WindowedQuantile(SimTime window, std::size_t num_windows);

  /// Records a value observed at time `now` (non-decreasing across calls).
  void record(SimTime now, SimTime value);

  /// Quantile over the retained windows as of time `now`; 0 if empty.
  SimTime quantile(SimTime now, double q) const;
  /// Observations currently retained as of `now`.
  std::int64_t count(SimTime now) const;

  SimTime window() const { return window_; }
  std::size_t num_windows() const { return ring_.size(); }

 private:
  struct Slot {
    std::int64_t epoch = -1;  // which absolute window this slot holds
    LatencyHistogram histogram;
  };

  std::int64_t epoch_of(SimTime t) const { return t / window_; }
  /// Lazily clears slots whose epoch has rotated out.
  bool slot_live(const Slot& slot, std::int64_t current_epoch) const;

  SimTime window_;
  std::vector<Slot> ring_;
};

}  // namespace memca
