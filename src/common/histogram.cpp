#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace memca {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

SimTime LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<SimTime>(index);
  }
  const std::size_t rel = index - kSubBuckets;
  const int decade = static_cast<int>(rel / kSubBuckets);
  const std::int64_t sub = static_cast<std::int64_t>(rel % kSubBuckets);
  const int shift = decade;  // matches bucket_index: shift = msb - kSubBucketBits, decade = shift + 1 - 1
  const std::int64_t base = (kSubBuckets + sub) << shift;
  const std::int64_t width = std::int64_t{1} << shift;
  return base + width - 1;
}

SimTime LatencyHistogram::bucket_mid(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<SimTime>(index);
  }
  const std::size_t rel = index - kSubBuckets;
  const int decade = static_cast<int>(rel / kSubBuckets);
  const std::int64_t sub = static_cast<std::int64_t>(rel % kSubBuckets);
  const std::int64_t base = (kSubBuckets + sub) << decade;
  const std::int64_t width = std::int64_t{1} << decade;
  return base + width / 2;
}

SimTime LatencyHistogram::quantile(double q) const {
  MEMCA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (empty()) return 0;
  const auto target = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(bucket_upper(i), max_);
    }
    if (seen >= target) {
      // target fell on an empty bucket boundary; keep scanning to next
      // populated bucket.
      for (std::size_t j = i + 1; j < buckets_.size(); ++j) {
        if (buckets_[j] > 0) return std::min(bucket_upper(j), max_);
      }
    }
  }
  return max_;
}

double LatencyHistogram::mean() const {
  if (empty()) return 0.0;
  return sum_ / static_cast<double>(count_);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  MEMCA_CHECK(buckets_.size() == other.buckets_.size());
  if (other.empty()) return;
  if (empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::fraction_above(SimTime threshold) const {
  if (empty()) return 0.0;
  // Count values in buckets entirely above the threshold, plus a
  // conservative split of the straddling bucket.
  std::int64_t above = 0;
  const std::size_t tidx = bucket_index(threshold);
  for (std::size_t i = tidx + 1; i < buckets_.size(); ++i) above += buckets_[i];
  return static_cast<double>(above) / static_cast<double>(count_);
}

}  // namespace memca
