#include "common/windowed_quantile.h"

#include "common/check.h"

namespace memca {

WindowedQuantile::WindowedQuantile(SimTime window, std::size_t num_windows)
    : window_(window), ring_(num_windows) {
  MEMCA_CHECK_MSG(window_ > 0, "window must be positive");
  MEMCA_CHECK_MSG(num_windows >= 1, "need at least one window");
}

bool WindowedQuantile::slot_live(const Slot& slot, std::int64_t current_epoch) const {
  return slot.epoch >= 0 &&
         current_epoch - slot.epoch < static_cast<std::int64_t>(ring_.size());
}

void WindowedQuantile::record(SimTime now, SimTime value) {
  const std::int64_t epoch = epoch_of(now);
  Slot& slot = ring_[static_cast<std::size_t>(epoch) % ring_.size()];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.histogram.reset();
  }
  slot.histogram.record(value);
}

SimTime WindowedQuantile::quantile(SimTime now, double q) const {
  const std::int64_t epoch = epoch_of(now);
  LatencyHistogram merged;
  for (const Slot& slot : ring_) {
    if (slot_live(slot, epoch)) merged.merge(slot.histogram);
  }
  return merged.quantile(q);
}

std::int64_t WindowedQuantile::count(SimTime now) const {
  const std::int64_t epoch = epoch_of(now);
  std::int64_t total = 0;
  for (const Slot& slot : ring_) {
    if (slot_live(slot, epoch)) total += slot.histogram.count();
  }
  return total;
}

}  // namespace memca
