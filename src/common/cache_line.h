// Cache-line geometry for hot-path data layout (the cache_line_size.hpp
// idiom): structures that are touched per simulated event are packed or
// aligned so one event touches one line, and parallel sweep workers never
// share a line by accident.
#pragma once

#include <cstddef>

namespace memca {

/// Line size assumed by the hot-path layout static_asserts. x86-64 and the
/// common aarch64 server cores all use 64 bytes; if a target diverges, the
/// asserts fail loudly instead of silently mis-packing.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace memca
