#include "common/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memca {

void TimeSeries::append(SimTime time, double value) {
  MEMCA_CHECK_MSG(samples_.empty() || time >= samples_.back().time,
                  "TimeSeries::append requires non-decreasing time");
  samples_.push_back(Sample{time, value});
}

Sample TimeSeries::front() const {
  MEMCA_CHECK(!samples_.empty());
  return samples_.front();
}

Sample TimeSeries::back() const {
  MEMCA_CHECK(!samples_.empty());
  return samples_.back();
}

double TimeSeries::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::max() const {
  double m = 0.0;
  bool first = true;
  for (const Sample& s : samples_) {
    m = first ? s.value : std::max(m, s.value);
    first = false;
  }
  return m;
}

double TimeSeries::mean_in(SimTime start, SimTime end) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.time >= start && s.time < end) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::max_in(SimTime start, SimTime end) const {
  double m = 0.0;
  bool first = true;
  for (const Sample& s : samples_) {
    if (s.time >= start && s.time < end) {
      m = first ? s.value : std::max(m, s.value);
      first = false;
    }
  }
  return first ? 0.0 : m;
}

std::size_t TimeSeries::count_above(double threshold) const {
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.value > threshold) ++n;
  }
  return n;
}

template <typename Reduce>
TimeSeries TimeSeries::resample(SimTime granularity, Reduce reduce) const {
  MEMCA_CHECK_MSG(granularity > 0, "resample granularity must be positive");
  TimeSeries out;
  std::size_t i = 0;
  while (i < samples_.size()) {
    const SimTime window_start = (samples_[i].time / granularity) * granularity;
    const SimTime window_end = window_start + granularity;
    std::size_t j = i;
    while (j < samples_.size() && samples_[j].time < window_end) ++j;
    out.append(window_start, reduce(&samples_[i], &samples_[j]));
    i = j;
  }
  return out;
}

TimeSeries TimeSeries::resample_mean(SimTime granularity) const {
  return resample(granularity, [](const Sample* first, const Sample* last) {
    double sum = 0.0;
    for (const Sample* s = first; s != last; ++s) sum += s->value;
    return sum / static_cast<double>(last - first);
  });
}

TimeSeries TimeSeries::resample_max(SimTime granularity) const {
  return resample(granularity, [](const Sample* first, const Sample* last) {
    double m = first->value;
    for (const Sample* s = first; s != last; ++s) m = std::max(m, s->value);
    return m;
  });
}

TimeSeries TimeSeries::merge_sum(const TimeSeries& other) const {
  TimeSeries out;
  out.samples_.reserve(samples_.size() + other.samples_.size());
  std::size_t i = 0, j = 0;
  while (i < samples_.size() && j < other.samples_.size()) {
    const Sample& a = samples_[i];
    const Sample& b = other.samples_[j];
    if (a.time == b.time) {
      out.samples_.push_back(Sample{a.time, a.value + b.value});
      ++i;
      ++j;
    } else if (a.time < b.time) {
      out.samples_.push_back(a);
      ++i;
    } else {
      out.samples_.push_back(b);
      ++j;
    }
  }
  for (; i < samples_.size(); ++i) out.samples_.push_back(samples_[i]);
  for (; j < other.samples_.size(); ++j) out.samples_.push_back(other.samples_[j]);
  return out;
}

double TimeSeries::autocorrelation(std::size_t lag) const {
  const std::size_t n = samples_.size();
  if (n < lag + 2) return 0.0;
  double mu = mean();
  double var = 0.0;
  for (const Sample& s : samples_) {
    const double d = s.value - mu;
    var += d * d;
  }
  if (var <= 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (samples_[i].value - mu) * (samples_[i + lag].value - mu);
  }
  return cov / var;
}

}  // namespace memca
