#include "common/rng.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace memca {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t hash_label(std::string_view label) {
  // FNV-1a, then scrambled through splitmix64 for avalanche.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return splitmix64(h);
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  engine_.seed(splitmix64(s));
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t s = seed_ ^ hash_label(label);
  return Rng(splitmix64(s));
}

double Rng::normal(double mean, double stddev) {
  MEMCA_DCHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::int64_t Rng::poisson(double mean) {
  MEMCA_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

}  // namespace memca
