// Aligned table / CSV printing for benches and examples.
//
// Every figure-reproduction bench prints its series through this so the
// output stays machine-diffable and readable: fixed column widths, one
// header row, optional CSV dump.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace memca {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; cell count must equal the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles at the given precision.
  static std::string num(double v, int precision = 2);
  /// Convenience: formats integers.
  static std::string num(std::int64_t v);

  /// Renders an aligned text table.
  void print(std::ostream& os) const;
  /// Renders CSV.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used to separate figure panels.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace memca
