// Append-only time series with resampling.
//
// Stores (time, value) samples in time order and supports the resampling
// operations the monitoring substrate needs: bucketed mean/max at a coarser
// granularity (what a CloudWatch-style monitor would see) and windowed
// statistics. Values are doubles; time is SimTime.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace memca {

struct Sample {
  SimTime time = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Appends a sample; time must be >= the last appended time.
  void append(SimTime time, double value);

  /// Pre-sizes the backing store for `n` samples (recording hot paths
  /// reserve up front so warm-up appends don't reallocate).
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Drops every sample past the first `n` (no-op if there are fewer).
  /// Capacity is retained: a series is append-only, so rolling back to an
  /// earlier checkpoint is exactly a truncation, and it must not allocate.
  void truncate(std::size_t n) {
    if (n < samples_.size()) samples_.resize(n);
  }

  const std::vector<Sample>& samples() const& { return samples_; }
  /// Rvalue overload returns by value so `resample_mean(...).samples()` in a
  /// range-for binds a lifetime-extended temporary instead of dangling.
  std::vector<Sample> samples() && { return std::move(samples_); }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  Sample front() const;
  Sample back() const;

  /// Mean of all sample values (0 if empty).
  double mean() const;
  /// Max of all sample values (0 if empty).
  double max() const;
  /// Mean of samples with time in [start, end).
  double mean_in(SimTime start, SimTime end) const;
  /// Max of samples with time in [start, end); 0 if none.
  double max_in(SimTime start, SimTime end) const;
  /// Number of samples with value strictly above `threshold`.
  std::size_t count_above(double threshold) const;

  /// Re-buckets into fixed-width windows of `granularity`, averaging the
  /// samples that fall into each window. The output sample time is the
  /// window start. Windows with no samples are skipped.
  TimeSeries resample_mean(SimTime granularity) const;
  /// Same, keeping the max per window.
  TimeSeries resample_max(SimTime granularity) const;

  /// Aligned union of this and `other`: samples at equal timestamps are
  /// summed into one sample, the rest interleave in time order. Both inputs
  /// must be time-ordered (the append invariant). This is the series half of
  /// the sweep-cell registry merge: per-cell series share a timebase, so the
  /// merged series is bit-identical no matter how cells were scheduled.
  TimeSeries merge_sum(const TimeSeries& other) const;

  /// Lag-k autocorrelation of the sample values (ignores timestamps); the
  /// periodicity detector uses this on uniformly-sampled series.
  /// Returns 0 for degenerate series (fewer than k+2 samples, zero variance).
  double autocorrelation(std::size_t lag) const;

 private:
  template <typename Reduce>
  TimeSeries resample(SimTime granularity, Reduce reduce) const;

  std::vector<Sample> samples_;
};

}  // namespace memca
