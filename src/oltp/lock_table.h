// Slot-indexed record-lock table for the OLTP tier.
//
// The table is SoA over a fixed key space of `num_records` records: a mode
// byte (free / shared / exclusive), a holder count, and an intrusive FIFO
// waiter queue per record (head/tail indices threaded through a per-txn
// next-pointer lane). A transaction waits on at most one record at a time —
// the OLTP tier acquires its (sorted, deduplicated) record list in order —
// so one next-pointer per transaction slot is enough, and ordered
// acquisition makes the wait-for graph acyclic: no deadlock detection is
// needed, even with parked waiters.
//
// Grants are strictly FIFO: an otherwise-compatible shared request queues
// behind an earlier exclusive waiter (no reader barging, no writer
// starvation). release() hands the record straight to the head waiter (and,
// for a shared head, the contiguous run of shared waiters behind it) so a
// lock never goes through a "free" state while someone is queued.
//
// All lanes are POD vectors: a checkpoint is a flat copy and rollback is a
// copy-back that never allocates (txn lanes only ever grow, mirroring
// RequestHotArena).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace memca::oltp {

class LockTable {
 public:
  static constexpr std::uint32_t kNoTxn = 0xffffffffu;

  enum class Mode : std::uint8_t { kFree = 0, kShared = 1, kExclusive = 2 };

  enum class Acquire : std::uint8_t {
    kGranted,  ///< lock taken; caller proceeds
    kQueued,   ///< parked in the record's FIFO waiter queue (WAIT scheme)
    kBusy,     ///< incompatible and wait=false (NO_WAIT scheme): caller aborts
  };

  explicit LockTable(std::uint32_t num_records);

  /// Grows the per-transaction lanes to cover slots [0, slots).
  void ensure_txns(std::uint32_t slots);

  /// Attempts to take `record` for `txn` in shared or exclusive mode.
  /// Compatible *and* nothing queued ahead -> kGranted. Otherwise parks the
  /// transaction (wait=true) or reports kBusy (wait=false). The caller must
  /// not already hold the record (the tier dedupes its record list).
  Acquire try_acquire(std::uint32_t txn, std::uint32_t record, bool exclusive,
                      bool wait);

  /// Releases `txn`'s hold on `record`. When the release frees the record,
  /// ownership passes directly to the head waiter — and, for a shared head,
  /// the contiguous shared run behind it — whose transaction slots are
  /// appended to `granted` for the caller to resume.
  void release(std::uint32_t txn, std::uint32_t record,
               std::vector<std::uint32_t>& granted);

  // -- introspection --------------------------------------------------------
  std::uint32_t num_records() const { return static_cast<std::uint32_t>(mode_.size()); }
  Mode mode(std::uint32_t record) const { return mode_[record]; }
  std::uint32_t holders(std::uint32_t record) const { return holders_[record]; }
  bool has_waiters(std::uint32_t record) const { return wait_head_[record] != kNoTxn; }
  /// Transactions currently parked in some waiter queue (the probe value).
  int waiters() const { return waiters_; }

  /// Checkpoint: flat copies of every lane. Record lanes are fixed-size;
  /// txn lanes are captured at their current high-water mark and restored
  /// by prefix copy (lanes never shrink, so restore never allocates — lane
  /// entries beyond the captured prefix belong to transactions that are
  /// fully re-initialized before their next use).
  struct Snapshot {
    std::vector<Mode> mode;
    std::vector<std::uint32_t> holders;
    std::vector<std::uint32_t> wait_head;
    std::vector<std::uint32_t> wait_tail;
    std::vector<std::uint32_t> next_waiter;
    std::vector<std::uint8_t> wait_exclusive;
    int waiters = 0;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

 private:
  /// Appends `txn` to `record`'s waiter queue.
  void park(std::uint32_t txn, std::uint32_t record, bool exclusive);

  // -- per-record lanes (fixed size num_records) ----------------------------
  std::vector<Mode> mode_;
  std::vector<std::uint32_t> holders_;
  std::vector<std::uint32_t> wait_head_;
  std::vector<std::uint32_t> wait_tail_;

  // -- per-transaction lanes (grow-only, indexed by pool slot) --------------
  std::vector<std::uint32_t> next_waiter_;
  std::vector<std::uint8_t> wait_exclusive_;

  int waiters_ = 0;
};

}  // namespace memca::oltp
