// A lock/CC-aware TierServer variant: each request is a transaction.
//
// The paper models the bottleneck (MySQL) tier as exponential-service FIFO,
// but a real database tier holds record locks for the duration of each
// transaction. That couples the attack to the tail through a second channel:
// a transient capacity dip stretches service times, service time *is* the
// lock hold time, waiters convoy behind the stretched holders, and the
// convoy outlives the dip — amplification the FIFO model cannot produce at
// the same offered load.
//
// Lifecycle on top of the base tier: admission takes a thread as usual, then
// begin_local_work samples a transaction profile (short/long class, records
// per transaction, per-record write flag) with Zipf-skewed record ids,
// sorts and dedupes the record list (ordered acquisition -> wait-for graph
// is acyclic -> deadlock-free), and acquires the locks in order. Under the
// WAIT scheme an incompatible lock parks the transaction in the record's
// FIFO waiter queue; under NO_WAIT it aborts, releases everything, backs
// off exponentially and retries. Only when every lock is held does the
// transaction queue for a worker; locks release the instant local service
// ends (after_local_service), handing records straight to parked waiters.
//
// Instrumented: one kLockWaitSpan trace event per transaction that ever
// stalled (emitted at final grant, aux = first stall time, nesting inside
// the tier's admission->service window so tail attribution carves lock
// convoy out of queue wait), plus commit/abort/lock-wait counters and
// lock-wait / lock-hold histograms mirrored into the metrics registry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "oltp/lock_table.h"
#include "queueing/tier.h"

namespace memca::oltp {

/// One transaction class of the mix.
struct TxnClass {
  /// Records touched per transaction (clamped to kMaxTxnRecords).
  int records = 4;
  /// Probability each touched record is written (exclusive lock).
  double write_ratio = 0.5;
  /// Scales the tier's staged service demand for this class: a long
  /// transaction does proportionally more local work — and therefore holds
  /// its locks proportionally longer.
  double demand_multiplier = 1.0;
};

enum class CcScheme : std::uint8_t {
  /// Incompatible lock -> park in the record's FIFO waiter queue.
  kWaitFifo,
  /// Incompatible lock -> abort, release all, back off, retry (NO_WAIT).
  kNoWaitBackoff,
};

struct OltpConfig {
  /// Key-space size of the lock table.
  std::uint32_t num_records = 2048;
  /// Zipf skew of record selection, in [0, 1). 0 = uniform.
  double zipf_theta = 0.9;
  TxnClass short_txn{4, 0.5, 1.0};
  TxnClass long_txn{12, 0.5, 4.0};
  /// Probability a transaction is drawn from the long class.
  double long_txn_fraction = 0.1;
  CcScheme scheme = CcScheme::kWaitFifo;
  /// NO_WAIT backoff: base << min(retries, cap) microseconds, deterministic
  /// (no jitter — the sim needs bit-reproducible schedules).
  SimTime backoff_base_us = 100;
  int backoff_cap = 6;
};

/// Pre-resolved registry handles (detached by default, like TierMetrics).
struct OltpMetrics {
  metrics::Counter commits;
  metrics::Counter aborts;
  metrics::Counter lock_waits;
  metrics::HistogramHandle lock_wait;
  metrics::HistogramHandle lock_hold;
};

class OltpTierServer : public queueing::TierServer {
 public:
  /// Widest transaction the lanes can carry (write set as a u32 bit mask).
  static constexpr int kMaxTxnRecords = 32;

  OltpTierServer(Simulator& sim, queueing::RequestPool& pool,
                 queueing::TierConfig config, std::size_t tier_index,
                 OltpConfig oltp, Rng rng);

  const OltpConfig& oltp_config() const { return oltp_; }
  const LockTable& lock_table() const { return locks_; }

  // -- stats (always collected; registry mirroring is optional) -------------
  std::int64_t commits() const { return commits_; }
  std::int64_t aborts() const { return aborts_; }
  /// Transactions that stalled on at least one lock (waited or aborted).
  std::int64_t lock_waits() const { return lock_waits_; }
  const LatencyHistogram& lock_wait_time() const { return lock_wait_time_; }
  const LatencyHistogram& lock_hold_time() const { return lock_hold_time_; }

  void set_oltp_metrics(OltpMetrics metrics) { metrics_ = metrics; }

  /// Checkpoint of the OLTP extension only — the base TierServer part is
  /// captured through NTierSystem's tier snapshots, so WorldSnapshot
  /// attaches this object a second time for the lock/transaction state.
  struct Snapshot {
    LockTable::Snapshot locks;
    Rng rng{0};
    std::vector<std::uint32_t> records;
    std::vector<std::uint32_t> write_mask;
    std::vector<std::uint8_t> record_count;
    std::vector<std::uint8_t> acquired;
    std::vector<std::uint8_t> retries;
    std::vector<SimTime> wait_start;
    std::vector<SimTime> first_grant;
    LatencyHistogram lock_wait_time;
    LatencyHistogram lock_hold_time;
    std::int64_t commits = 0;
    std::int64_t aborts = 0;
    std::int64_t lock_waits = 0;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

 protected:
  /// Sample the transaction profile and start ordered lock acquisition.
  void begin_local_work(std::uint32_t slot) override;
  /// Commit: release every record, resume granted waiters.
  void after_local_service(std::uint32_t slot) override;

 private:
  /// Acquires the remaining locks in order; parks / schedules a backoff
  /// retry on conflict, queues for a worker once everything is held.
  void continue_acquisition(std::uint32_t slot);
  /// Resume path for a waiter granted its record inside LockTable::release.
  void on_lock_granted(std::uint32_t slot);
  /// NO_WAIT backoff expiry.
  void retry(std::uint32_t slot);
  /// Grows the transaction lanes to cover pool slot `slot`.
  void ensure_lanes(std::uint32_t slot);

  OltpConfig oltp_;
  Rng rng_;
  FastZipf zipf_;
  LockTable locks_;

  // -- per-transaction SoA lanes, indexed by pool slot (grow-only) ----------
  /// Sorted, deduplicated record list: records_[slot * kMaxTxnRecords + i].
  std::vector<std::uint32_t> records_;
  /// Bit i set -> records_[.. + i] is acquired exclusive.
  std::vector<std::uint32_t> write_mask_;
  std::vector<std::uint8_t> record_count_;
  /// Locks already held (the next one to take is records_[.. + acquired]).
  std::vector<std::uint8_t> acquired_;
  /// NO_WAIT retries so far (saturating; exponent clamps at backoff_cap).
  std::vector<std::uint8_t> retries_;
  /// First moment the transaction stalled on a lock; -1 = never stalled.
  std::vector<SimTime> wait_start_;
  /// First lock grant (lock-hold spans run from here to release); -1 unset.
  std::vector<SimTime> first_grant_;

  /// Scratch for LockTable::release output; bounded by the thread limit.
  std::vector<std::uint32_t> granted_scratch_;
  /// Second scratch the commit path resumes waiters from (swap-protected
  /// against a resumed waiter reusing granted_scratch_).
  std::vector<std::uint32_t> resumed_scratch_;

  LatencyHistogram lock_wait_time_;
  LatencyHistogram lock_hold_time_;
  std::int64_t commits_ = 0;
  std::int64_t aborts_ = 0;
  std::int64_t lock_waits_ = 0;
  OltpMetrics metrics_;
};

}  // namespace memca::oltp
