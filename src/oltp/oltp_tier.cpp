#include "oltp/oltp_tier.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace memca::oltp {

using queueing::RequestState;

OltpTierServer::OltpTierServer(Simulator& sim, queueing::RequestPool& pool,
                               queueing::TierConfig config, std::size_t tier_index,
                               OltpConfig oltp, Rng rng)
    : TierServer(sim, pool, std::move(config), tier_index),
      oltp_(oltp),
      rng_(std::move(rng)),
      zipf_(oltp_.zipf_theta, oltp_.num_records),
      locks_(oltp_.num_records) {
  MEMCA_CHECK_MSG(oltp_.short_txn.records >= 0 && oltp_.long_txn.records >= 0,
                  "transaction record counts must be non-negative");
  MEMCA_CHECK_MSG(oltp_.backoff_base_us >= 1, "NO_WAIT backoff base must be positive");
  MEMCA_CHECK_MSG(oltp_.backoff_cap >= 0 && oltp_.backoff_cap <= 20,
                  "backoff exponent cap out of range");
  // At most `threads` transactions are resident, so a release batch can
  // never wake more waiters than that.
  granted_scratch_.reserve(static_cast<std::size_t>(config_.threads));
  resumed_scratch_.reserve(static_cast<std::size_t>(config_.threads));
}

void OltpTierServer::ensure_lanes(std::uint32_t slot) {
  const std::uint32_t slots = slot + 1;
  if (slots <= record_count_.size()) return;
  records_.resize(static_cast<std::size_t>(slots) * kMaxTxnRecords, 0);
  write_mask_.resize(slots, 0);
  record_count_.resize(slots, 0);
  acquired_.resize(slots, 0);
  retries_.resize(slots, 0);
  wait_start_.resize(slots, -1);
  first_grant_.resize(slots, -1);
  locks_.ensure_txns(slots);
}

void OltpTierServer::begin_local_work(std::uint32_t slot) {
  ensure_lanes(slot);

  // Sample the transaction profile: class, Zipf-skewed record ids, and a
  // per-record write flag. Sorting and deduplicating (write flags OR-merge
  // on a duplicate) gives ordered acquisition its deadlock-freedom and
  // prevents a transaction from self-conflicting.
  const bool is_long = rng_.chance(oltp_.long_txn_fraction);
  const TxnClass& cls = is_long ? oltp_.long_txn : oltp_.short_txn;
  const int sampled = std::min(cls.records, kMaxTxnRecords);

  std::uint32_t ids[kMaxTxnRecords];
  bool writes[kMaxTxnRecords];
  for (int i = 0; i < sampled; ++i) {
    ids[i] = static_cast<std::uint32_t>(zipf_(rng_));
    writes[i] = rng_.chance(cls.write_ratio);
  }
  // Insertion sort carrying the write flag: sampled <= 32.
  for (int i = 1; i < sampled; ++i) {
    const std::uint32_t id = ids[i];
    const bool w = writes[i];
    int j = i - 1;
    for (; j >= 0 && ids[j] > id; --j) {
      ids[j + 1] = ids[j];
      writes[j + 1] = writes[j];
    }
    ids[j + 1] = id;
    writes[j + 1] = w;
  }

  std::uint32_t* rec = &records_[static_cast<std::size_t>(slot) * kMaxTxnRecords];
  std::uint32_t mask = 0;
  int count = 0;
  for (int i = 0; i < sampled; ++i) {
    if (count > 0 && rec[count - 1] == ids[i]) {
      if (writes[i]) mask |= 1u << (count - 1);  // duplicate: merge the mode
      continue;
    }
    rec[count] = ids[i];
    if (writes[i]) mask |= 1u << count;
    ++count;
  }
  write_mask_[slot] = mask;
  record_count_[slot] = static_cast<std::uint8_t>(count);
  acquired_[slot] = 0;
  retries_[slot] = 0;
  wait_start_[slot] = -1;
  first_grant_[slot] = -1;

  // A long transaction does proportionally more local work; its staged
  // demand (and therefore its lock hold) scales before the worker reads it.
  // Re-quantized: the multiplier pushes the staged (already gridded) demand
  // off the grid, and quantized mode needs every demand on it.
  queueing::TierTrace& tr = hot_->stamp(slot, index_);
  tr.demand = hot_->quantize(tr.demand * cls.demand_multiplier);

  continue_acquisition(slot);
}

void OltpTierServer::continue_acquisition(std::uint32_t slot) {
  const std::uint32_t* rec = &records_[static_cast<std::size_t>(slot) * kMaxTxnRecords];
  const std::uint32_t mask = write_mask_[slot];
  const int count = record_count_[slot];
  const bool wait = oltp_.scheme == CcScheme::kWaitFifo;

  while (acquired_[slot] < count) {
    const int i = acquired_[slot];
    const bool exclusive = (mask & (1u << i)) != 0;
    switch (locks_.try_acquire(slot, rec[i], exclusive, wait)) {
      case LockTable::Acquire::kGranted:
        if (first_grant_[slot] < 0) first_grant_[slot] = sim_.now();
        ++acquired_[slot];
        break;
      case LockTable::Acquire::kQueued:
        hot_->state(slot) = RequestState::kLockWait;
        if (wait_start_[slot] < 0) {
          wait_start_[slot] = sim_.now();
          ++lock_waits_;
          metrics_.lock_waits.inc();
        }
        return;
      case LockTable::Acquire::kBusy: {
        // NO_WAIT: abort, release everything, back off, retry. Nobody can
        // be parked behind us under a pure NO_WAIT scheme, but release()
        // still reports grants for robustness.
        granted_scratch_.clear();
        for (int k = 0; k < acquired_[slot]; ++k) {
          locks_.release(slot, rec[k], granted_scratch_);
        }
        acquired_[slot] = 0;
        first_grant_[slot] = -1;
        ++aborts_;
        metrics_.aborts.inc();
        if (wait_start_[slot] < 0) {
          wait_start_[slot] = sim_.now();
          ++lock_waits_;
          metrics_.lock_waits.inc();
        }
        const int exp = std::min<int>(retries_[slot], oltp_.backoff_cap);
        if (retries_[slot] < 0xff) ++retries_[slot];
        hot_->state(slot) = RequestState::kLockWait;
        // Deterministic (jitter-free) exponential backoff; the closure is
        // trivially copyable, so it survives a snapshot/rollback. The
        // transaction holds its tier thread throughout, so `slot` cannot
        // be recycled before the retry fires.
        sim_.schedule_in(oltp_.backoff_base_us << exp,
                         [this, slot] { retry(slot); });
        for (std::uint32_t g : granted_scratch_) on_lock_granted(g);
        return;
      }
    }
  }

  // Every lock held: settle the wait span (if the transaction ever stalled)
  // and hand the request to the worker bank.
  if (wait_start_[slot] >= 0) {
    const SimTime waited = sim_.now() - wait_start_[slot];
    lock_wait_time_.record(waited);
    metrics_.lock_wait.record(waited);
    const queueing::Request& req = *pool_.get(slot);
    trace::emit(trace_, trace::TraceEvent{sim_.now(), req.id, wait_start_[slot], 0.0,
                                          req.user, static_cast<std::int16_t>(index_),
                                          trace::EventKind::kLockWaitSpan,
                                          static_cast<std::uint8_t>(req.attempt())});
  }
  queue_for_worker(slot);
}

void OltpTierServer::on_lock_granted(std::uint32_t slot) {
  if (first_grant_[slot] < 0) first_grant_[slot] = sim_.now();
  ++acquired_[slot];
  continue_acquisition(slot);
}

void OltpTierServer::retry(std::uint32_t slot) {
  MEMCA_DCHECK(hot_->state(slot) == RequestState::kLockWait);
  continue_acquisition(slot);
}

void OltpTierServer::after_local_service(std::uint32_t slot) {
  ++commits_;
  metrics_.commits.inc();
  const int count = record_count_[slot];
  if (count == 0) return;
  // Two-phase release: free every record first, then resume the granted
  // waiters — a waiter resumed mid-release could otherwise re-queue behind
  // records this transaction still holds.
  granted_scratch_.clear();
  const std::uint32_t* rec = &records_[static_cast<std::size_t>(slot) * kMaxTxnRecords];
  for (int i = 0; i < count; ++i) locks_.release(slot, rec[i], granted_scratch_);
  if (first_grant_[slot] >= 0) {
    const SimTime held = sim_.now() - first_grant_[slot];
    lock_hold_time_.record(held);
    metrics_.lock_hold.record(held);
  }
  record_count_[slot] = 0;
  acquired_[slot] = 0;
  // Resume from the second scratch: a resumed waiter can reach an abort
  // path that clobbers granted_scratch_.
  std::swap(granted_scratch_, resumed_scratch_);
  for (std::uint32_t g : resumed_scratch_) on_lock_granted(g);
  resumed_scratch_.clear();
}

void OltpTierServer::capture(Snapshot& out) const {
  locks_.capture(out.locks);
  out.rng = rng_;
  out.records.assign(records_.begin(), records_.end());
  out.write_mask.assign(write_mask_.begin(), write_mask_.end());
  out.record_count.assign(record_count_.begin(), record_count_.end());
  out.acquired.assign(acquired_.begin(), acquired_.end());
  out.retries.assign(retries_.begin(), retries_.end());
  out.wait_start.assign(wait_start_.begin(), wait_start_.end());
  out.first_grant.assign(first_grant_.begin(), first_grant_.end());
  out.lock_wait_time = lock_wait_time_;
  out.lock_hold_time = lock_hold_time_;
  out.commits = commits_;
  out.aborts = aborts_;
  out.lock_waits = lock_waits_;
}

void OltpTierServer::restore(const Snapshot& snap) {
  locks_.restore(snap.locks);
  rng_ = snap.rng;
  std::copy(snap.records.begin(), snap.records.end(), records_.begin());
  std::copy(snap.write_mask.begin(), snap.write_mask.end(), write_mask_.begin());
  std::copy(snap.record_count.begin(), snap.record_count.end(), record_count_.begin());
  std::copy(snap.acquired.begin(), snap.acquired.end(), acquired_.begin());
  std::copy(snap.retries.begin(), snap.retries.end(), retries_.begin());
  std::copy(snap.wait_start.begin(), snap.wait_start.end(), wait_start_.begin());
  std::copy(snap.first_grant.begin(), snap.first_grant.end(), first_grant_.begin());
  lock_wait_time_ = snap.lock_wait_time;
  lock_hold_time_ = snap.lock_hold_time;
  commits_ = snap.commits;
  aborts_ = snap.aborts;
  lock_waits_ = snap.lock_waits;
}

}  // namespace memca::oltp
