#include "oltp/lock_table.h"

#include <algorithm>

namespace memca::oltp {

LockTable::LockTable(std::uint32_t num_records) {
  MEMCA_CHECK_MSG(num_records >= 1, "a lock table needs at least one record");
  mode_.assign(num_records, Mode::kFree);
  holders_.assign(num_records, 0);
  wait_head_.assign(num_records, kNoTxn);
  wait_tail_.assign(num_records, kNoTxn);
}

void LockTable::ensure_txns(std::uint32_t slots) {
  if (slots <= next_waiter_.size()) return;
  next_waiter_.resize(slots, kNoTxn);
  wait_exclusive_.resize(slots, 0);
}

LockTable::Acquire LockTable::try_acquire(std::uint32_t txn, std::uint32_t record,
                                          bool exclusive, bool wait) {
  MEMCA_DCHECK(record < mode_.size());
  MEMCA_DCHECK(txn < next_waiter_.size());
  const Mode m = mode_[record];
  const bool compatible = m == Mode::kFree || (m == Mode::kShared && !exclusive);
  // FIFO: even a compatible shared request queues behind an earlier
  // exclusive waiter, so writers are never starved by a reader stream.
  if (compatible && wait_head_[record] == kNoTxn) {
    mode_[record] = exclusive ? Mode::kExclusive : Mode::kShared;
    ++holders_[record];
    return Acquire::kGranted;
  }
  if (!wait) return Acquire::kBusy;
  park(txn, record, exclusive);
  return Acquire::kQueued;
}

void LockTable::park(std::uint32_t txn, std::uint32_t record, bool exclusive) {
  next_waiter_[txn] = kNoTxn;
  wait_exclusive_[txn] = exclusive ? 1 : 0;
  if (wait_head_[record] == kNoTxn) {
    wait_head_[record] = txn;
  } else {
    next_waiter_[wait_tail_[record]] = txn;
  }
  wait_tail_[record] = txn;
  ++waiters_;
}

void LockTable::release(std::uint32_t txn, std::uint32_t record,
                        std::vector<std::uint32_t>& granted) {
  (void)txn;
  MEMCA_DCHECK(record < mode_.size());
  MEMCA_CHECK_MSG(holders_[record] > 0, "release of an unheld record");
  if (--holders_[record] > 0) return;  // other shared holders remain

  const std::uint32_t head = wait_head_[record];
  if (head == kNoTxn) {
    mode_[record] = Mode::kFree;
    return;
  }
  // Hand the record straight to the head waiter; a shared head also admits
  // the contiguous run of shared waiters queued behind it (one wake per
  // release batch, never a thundering herd past the first writer).
  const bool head_exclusive = wait_exclusive_[head] != 0;
  mode_[record] = head_exclusive ? Mode::kExclusive : Mode::kShared;
  std::uint32_t w = head;
  while (w != kNoTxn) {
    if (wait_exclusive_[w] != (head_exclusive ? 1 : 0)) break;
    const std::uint32_t next = next_waiter_[w];
    ++holders_[record];
    granted.push_back(w);
    next_waiter_[w] = kNoTxn;
    --waiters_;
    w = next;
    if (head_exclusive) break;  // exclusive grant admits exactly one
  }
  wait_head_[record] = w;
  if (w == kNoTxn) wait_tail_[record] = kNoTxn;
}

void LockTable::capture(Snapshot& out) const {
  out.mode.assign(mode_.begin(), mode_.end());
  out.holders.assign(holders_.begin(), holders_.end());
  out.wait_head.assign(wait_head_.begin(), wait_head_.end());
  out.wait_tail.assign(wait_tail_.begin(), wait_tail_.end());
  out.next_waiter.assign(next_waiter_.begin(), next_waiter_.end());
  out.wait_exclusive.assign(wait_exclusive_.begin(), wait_exclusive_.end());
  out.waiters = waiters_;
}

void LockTable::restore(const Snapshot& snap) {
  std::copy(snap.mode.begin(), snap.mode.end(), mode_.begin());
  std::copy(snap.holders.begin(), snap.holders.end(), holders_.begin());
  std::copy(snap.wait_head.begin(), snap.wait_head.end(), wait_head_.begin());
  std::copy(snap.wait_tail.begin(), snap.wait_tail.end(), wait_tail_.begin());
  std::copy(snap.next_waiter.begin(), snap.next_waiter.end(), next_waiter_.begin());
  std::copy(snap.wait_exclusive.begin(), snap.wait_exclusive.end(),
            wait_exclusive_.begin());
  waiters_ = snap.waiters;
}

}  // namespace memca::oltp
