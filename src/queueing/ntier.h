// The n-tier system: a chain of TierServers with synchronous RPC coupling.
//
// Requests live in the system's RequestPool from submission to reply, so
// completion delivery is pointer identity — the front tier's reply sink
// hands back the exact Request* that travelled the chain; there is no
// per-request ownership table to probe. Exposes per-tier handles for
// monitoring and for the attack coupling (set_speed_multiplier on the
// bottleneck tier).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "queueing/system.h"
#include "queueing/tier.h"

namespace memca::queueing {

/// Builds the TierServer (or a derived variant) for one tier position. Lets
/// a caller above the queueing layer (e.g. the testbed swapping in the OLTP
/// lock-table tier) inject variants without queueing/ depending on them.
/// Returning nullptr means "use the default FIFO TierServer".
using TierFactory = std::function<std::unique_ptr<TierServer>(
    Simulator& sim, RequestPool& pool, const TierConfig& config, std::size_t index)>;

class NTierSystem : public RequestSystem {
 public:
  NTierSystem(Simulator& sim, std::vector<TierConfig> tiers);
  /// As above, but each tier is built through `factory` (nullptr results
  /// fall back to the base TierServer).
  NTierSystem(Simulator& sim, std::vector<TierConfig> tiers, const TierFactory& factory);

  /// Submits a pool-owned request. Resets its per-tier stamp lane (demand_us
  /// must already have one entry per tier). Returns false if dropped; the
  /// request is released back to the pool after the drop callback.
  bool submit(Request* req) override;

  /// A submit admits iff the front tier has a free thread.
  bool accepting() const override { return !tiers_.front()->full(); }

  std::size_t num_tiers() const { return tiers_.size(); }
  std::size_t depth() const override { return tiers_.size(); }
  TierServer& tier(std::size_t i);
  const TierServer& tier(std::size_t i) const;
  /// The last tier (the usual bottleneck — MySQL in the RUBBoS topology).
  TierServer& back_tier() { return tier(tiers_.size() - 1); }

  /// Paper Condition 1: Q_1 > Q_2 > ... > Q_n.
  bool satisfies_condition1() const;

  /// Attaches the recorder to the system and every tier.
  void set_trace(trace::TraceRecorder* recorder) override;

  /// Checkpoint of the whole chain: pool + counters + every tier. Tier
  /// wiring (downstream pointers, reply sink) is construction-time and not
  /// captured; restore() requires the same tier count it was taken from.
  struct Snapshot {
    CountersSnapshot counters;
    std::vector<TierServer::Snapshot> tiers;
  };

  void capture(Snapshot& out) const {
    capture_counters(out.counters);
    out.tiers.resize(tiers_.size());
    for (std::size_t i = 0; i < tiers_.size(); ++i) tiers_[i]->capture(out.tiers[i]);
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.tiers.size() == tiers_.size());
    restore_counters(snap.counters);
    for (std::size_t i = 0; i < tiers_.size(); ++i) tiers_[i]->restore(snap.tiers[i]);
  }

 private:
  void on_reply(Request* req);
  /// Quantized mode: delivers one completion group's replies (front tier's
  /// batch reply sink) through on_complete_batch_ when set, else per request.
  void on_reply_batch(Request* const* reqs, std::size_t n);

  Simulator& sim_;
  trace::TraceRecorder* trace_ = nullptr;
  std::vector<std::unique_ptr<TierServer>> tiers_;
};

}  // namespace memca::queueing
