// The n-tier system: a chain of TierServers with synchronous RPC coupling.
//
// Owns the requests in flight, delivers completion/drop callbacks to the
// workload layer, and exposes per-tier handles for monitoring and for the
// attack coupling (set_speed_multiplier on the bottleneck tier).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "queueing/system.h"
#include "queueing/tier.h"

namespace memca::queueing {

class NTierSystem : public RequestSystem {
 public:
  NTierSystem(Simulator& sim, std::vector<TierConfig> tiers);

  /// Completion callback: fires when a reply reaches the client side.
  void set_on_complete(std::function<void(const Request&)> fn) override;
  /// Drop callback: fires when the front tier rejects (TCP will retransmit).
  void set_on_drop(std::function<void(const Request&)> fn) override;

  /// Submits a request. Sizes trace to the tier count (demand_us must
  /// already have one entry per tier). Returns false if dropped.
  bool submit(std::unique_ptr<Request> req) override;

  std::size_t num_tiers() const { return tiers_.size(); }
  std::size_t depth() const override { return tiers_.size(); }
  TierServer& tier(std::size_t i);
  const TierServer& tier(std::size_t i) const;
  /// The last tier (the usual bottleneck — MySQL in the RUBBoS topology).
  TierServer& back_tier() { return tier(tiers_.size() - 1); }

  /// Paper Condition 1: Q_1 > Q_2 > ... > Q_n.
  bool satisfies_condition1() const;

  std::int64_t submitted() const override { return submitted_; }
  std::int64_t completed() const override { return completed_; }
  std::int64_t dropped() const override { return dropped_; }
  std::int64_t in_flight() const { return static_cast<std::int64_t>(in_flight_.size()); }

  /// Attaches the recorder to the system and every tier.
  void set_trace(trace::TraceRecorder* recorder) override;

 private:
  void on_reply(Request* req);

  Simulator& sim_;
  trace::TraceRecorder* trace_ = nullptr;
  std::vector<std::unique_ptr<TierServer>> tiers_;
  std::unordered_map<Request::Id, std::unique_ptr<Request>> in_flight_;
  std::function<void(const Request&)> on_complete_;
  std::function<void(const Request&)> on_drop_;
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace memca::queueing
