// A client request travelling through the n-tier system.
//
// Service demands are pre-sampled by the workload generator (one work amount
// per tier, in microseconds of work at nominal speed 1.0). Pre-sampling keeps
// all randomness in the workload layer, so the same request stream can be
// replayed through different system models (n-tier vs tandem) for an
// apples-to-apples comparison.
//
// The request is split hot/cold. Fields the tiers touch on every simulated
// event — per-tier timestamps, lifecycle state, current tier, retransmission
// bookkeeping — live in RequestHotArena, a slot-indexed SoA arena owned by
// RequestPool: packed parallel lanes, so an enqueue/dequeue/complete touches
// a handful of dense cache lines instead of chasing a Request* into a 100+
// byte body. The pooled body keeps the cold per-attempt fields (identity,
// demand vector) and exposes accessors that read through to the arena, so
// completion callbacks and tests keep a single-object view of the request.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca::queueing {

struct TierTrace {
  SimTime enter = -1;
  /// First moment a local worker picked the request up; the gap from enter
  /// is pure queue wait (distinct from downstream residence).
  SimTime service_start = -1;
  SimTime leave = -1;
  /// Service demand staged at submit time (microseconds of work at speed
  /// 1.0). A copy of Request::demand_us[tier], placed next to the stamps so
  /// starting a service reads its work amount from the lane line the admit
  /// path just wrote — no chase through the Request body per tier hop.
  double demand = 0.0;
};
static_assert(sizeof(TierTrace) == 32, "stamp record should stay packed");

/// Where in the tier chain a request currently is. Written by the tiers on
/// every transition; introspection for tests, DCHECKs and (future) cohort
/// scheduling — the hot path only writes it.
enum class RequestState : std::uint8_t {
  kIdle = 0,            ///< in the pool free list / not yet submitted
  kWaiting,             ///< in a tier's wait queue
  kInService,           ///< on a worker
  kBlockedDownstream,   ///< local service done, downstream thread pool full
  kLockWait,            ///< OLTP tier: parked in a record-lock waiter queue
                        ///  (or backing off before a NO_WAIT retry)
};

/// Slot-indexed SoA arena for the per-event hot request fields. One lane per
/// field (parallel arrays indexed by pool slot); the per-tier timestamp lane
/// is slot-major (`slot * depth + tier`) so one request's three stamps for a
/// tier share a line. Owned by RequestPool, which grows it in lockstep with
/// the slot high-water mark; lanes never shrink, so a checkpoint rollback
/// restores by copy without allocating.
class RequestHotArena {
 public:
  /// Fixes the per-request tier depth (stamp lane stride). Set once by the
  /// owning system before the first request is acquired.
  void set_depth(std::size_t depth) {
    MEMCA_CHECK_MSG(depth_ == 0 || depth_ == depth,
                    "hot arena depth is fixed for the pool's lifetime");
    MEMCA_CHECK_MSG(depth >= 1, "a system needs at least one tier");
    depth_ = depth;
  }
  std::size_t depth() const { return depth_; }

  /// Fixes the service-demand quantum (µs of speed-1 work; 0 = exact, the
  /// default). When set, stage_demands rounds every staged demand onto the
  /// quantum grid — see quantize(). A deliberate event-stream change: set it
  /// once at system construction, before the first request is staged.
  void set_quantum(double quantum_us) {
    MEMCA_CHECK_MSG(quantum_us >= 0.0, "service quantum must be non-negative");
    quantum_us_ = quantum_us;
  }
  double quantum() const { return quantum_us_; }

  /// Rounds `demand_us` onto the quantum grid: nearest multiple, with a floor
  /// of one quantum so non-zero work never rounds to nothing. Nearest (rather
  /// than up) keeps the mean demand of an exponential sample essentially
  /// unbiased, which is what lets quantized runs stay inside the Fig. 2
  /// throughput-equivalence gate. Identity when the quantum is 0.
  double quantize(double demand_us) const {
    if (quantum_us_ <= 0.0) return demand_us;
    return std::max(1.0, std::round(demand_us / quantum_us_)) * quantum_us_;
  }

  /// Grows every lane to cover slots [0, slots). Lanes only ever grow.
  void ensure(std::uint32_t slots) {
    if (slots <= sent_.size()) return;
    sent_.resize(slots, 0);
    first_sent_.resize(slots, 0);
    attempt_.resize(slots, 0);
    tier_.resize(slots, -1);
    state_.resize(slots, RequestState::kIdle);
    MEMCA_CHECK_MSG(depth_ != 0, "set_depth must run before the first acquire");
    stamps_.resize(static_cast<std::size_t>(slots) * depth_);
  }

  // -- per-slot scalar lanes ------------------------------------------------
  SimTime& sent(std::uint32_t slot) { return sent_[slot]; }
  SimTime sent(std::uint32_t slot) const { return sent_[slot]; }
  SimTime& first_sent(std::uint32_t slot) { return first_sent_[slot]; }
  SimTime first_sent(std::uint32_t slot) const { return first_sent_[slot]; }
  std::int32_t& attempt(std::uint32_t slot) { return attempt_[slot]; }
  std::int32_t attempt(std::uint32_t slot) const { return attempt_[slot]; }
  std::int16_t& tier(std::uint32_t slot) { return tier_[slot]; }
  std::int16_t tier(std::uint32_t slot) const { return tier_[slot]; }
  RequestState& state(std::uint32_t slot) { return state_[slot]; }
  RequestState state(std::uint32_t slot) const { return state_[slot]; }

  // -- per-slot x per-tier timestamp lane -----------------------------------
  TierTrace& stamp(std::uint32_t slot, std::size_t tier) {
    MEMCA_DCHECK(tier < depth_);
    return stamps_[static_cast<std::size_t>(slot) * depth_ + tier];
  }
  const TierTrace& stamp(std::uint32_t slot, std::size_t tier) const {
    MEMCA_DCHECK(tier < depth_);
    return stamps_[static_cast<std::size_t>(slot) * depth_ + tier];
  }

  /// Acquire-time reset of the scalar lanes (mirrors the body-field reset).
  void reset_hot(std::uint32_t slot) {
    sent_[slot] = 0;
    first_sent_[slot] = 0;
    attempt_[slot] = 0;
    tier_[slot] = -1;
    state_[slot] = RequestState::kIdle;
  }

  /// Submit-time reset of the stamp lane (what trace.assign(depth, {}) was).
  void reset_stamps(std::uint32_t slot) {
    TierTrace* s = &stamps_[static_cast<std::size_t>(slot) * depth_];
    for (std::size_t t = 0; t < depth_; ++t) s[t] = TierTrace{};
  }

  /// Submit-time staging: resets the slot's stamps and copies the per-tier
  /// service demands into them in one pass over the lane, rounding each onto
  /// the quantum grid when a quantum is set (identity by default).
  void stage_demands(std::uint32_t slot, const std::vector<double>& demand_us) {
    MEMCA_DCHECK(demand_us.size() == depth_);
    TierTrace* s = &stamps_[static_cast<std::size_t>(slot) * depth_];
    for (std::size_t t = 0; t < depth_; ++t) {
      s[t] = TierTrace{-1, -1, -1, quantize(demand_us[t])};
    }
  }

  /// Checkpoint of the lanes: whole-prefix copies up to the slot high-water
  /// mark. Free slots are captured too (their lane values are never observed
  /// — acquire resets them — but a flat copy beats per-slot branching).
  struct Snapshot {
    std::vector<SimTime> sent;
    std::vector<SimTime> first_sent;
    std::vector<std::int32_t> attempt;
    std::vector<std::int16_t> tier;
    std::vector<RequestState> state;
    std::vector<TierTrace> stamps;
  };

  void capture(std::uint32_t slots, Snapshot& out) const {
    out.sent.assign(sent_.begin(), sent_.begin() + slots);
    out.first_sent.assign(first_sent_.begin(), first_sent_.begin() + slots);
    out.attempt.assign(attempt_.begin(), attempt_.begin() + slots);
    out.tier.assign(tier_.begin(), tier_.begin() + slots);
    out.state.assign(state_.begin(), state_.begin() + slots);
    const std::size_t n = static_cast<std::size_t>(slots) * depth_;
    out.stamps.assign(stamps_.begin(), stamps_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  /// Copies lane prefixes back in place. Never allocates: lanes never
  /// shrink, so every destination already has the capacity.
  void restore(const Snapshot& snap) {
    std::copy(snap.sent.begin(), snap.sent.end(), sent_.begin());
    std::copy(snap.first_sent.begin(), snap.first_sent.end(), first_sent_.begin());
    std::copy(snap.attempt.begin(), snap.attempt.end(), attempt_.begin());
    std::copy(snap.tier.begin(), snap.tier.end(), tier_.begin());
    std::copy(snap.state.begin(), snap.state.end(), state_.begin());
    std::copy(snap.stamps.begin(), snap.stamps.end(), stamps_.begin());
  }

 private:
  std::size_t depth_ = 0;
  /// Service-demand grid step in µs; 0 disables quantization (see quantize).
  double quantum_us_ = 0.0;
  std::vector<SimTime> sent_;
  std::vector<SimTime> first_sent_;
  std::vector<std::int32_t> attempt_;
  std::vector<std::int16_t> tier_;
  std::vector<RequestState> state_;
  /// Slot-major: stamps_[slot * depth_ + tier].
  std::vector<TierTrace> stamps_;
};

struct Request {
  using Id = std::int64_t;

  Id id = 0;
  /// Workload page class (index into the page profile table), -1 if n/a.
  int page_class = -1;
  /// Client/user index that issued the request, -1 if n/a.
  int user = -1;

  /// Per-tier service demand: microseconds of work at speed 1.0.
  std::vector<double> demand_us;

  /// Arena bookkeeping, owned by RequestPool: the request's slot index, its
  /// generation word (LSB set while the request is live), and the hot-field
  /// arena this slot's lanes live in. A released request keeps its slot and
  /// bumps the generation, so a stale pointer or handle from a previous
  /// occupancy can be detected.
  std::uint32_t pool_slot = 0;
  std::uint32_t pool_gen = 0;
  RequestHotArena* hot = nullptr;

  // -- hot-field accessors (read through to the arena lanes) ----------------
  /// TCP retransmission attempt (0 = first transmission).
  std::int32_t attempt() const { return hot->attempt(pool_slot); }
  void set_attempt(std::int32_t a) { hot->attempt(pool_slot) = a; }
  /// Time the *first* transmission of this logical request left the client.
  SimTime first_sent() const { return hot->first_sent(pool_slot); }
  void set_first_sent(SimTime t) { hot->first_sent(pool_slot) = t; }
  /// Time this attempt left the client.
  SimTime sent() const { return hot->sent(pool_slot); }
  void set_sent(SimTime t) { hot->sent(pool_slot) = t; }

  /// This attempt's enter/service/leave stamps at `tier`.
  const TierTrace& trace_at(std::size_t tier) const {
    return hot->stamp(pool_slot, tier);
  }

  /// Tier residence time (leave - enter), -1 if the request never left.
  SimTime tier_time(std::size_t tier) const {
    if (tier >= hot->depth()) return -1;
    const TierTrace& t = hot->stamp(pool_slot, tier);
    if (t.enter < 0 || t.leave < 0) return -1;
    return t.leave - t.enter;
  }

  /// Queue wait at the tier (service_start - enter), -1 if never served.
  SimTime wait_time(std::size_t tier) const {
    if (tier >= hot->depth()) return -1;
    const TierTrace& t = hot->stamp(pool_slot, tier);
    if (t.enter < 0 || t.service_start < 0) return -1;
    return t.service_start - t.enter;
  }
};

}  // namespace memca::queueing
