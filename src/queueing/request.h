// A client request travelling through the n-tier system.
//
// Service demands are pre-sampled by the workload generator (one work amount
// per tier, in microseconds of work at nominal speed 1.0). Pre-sampling keeps
// all randomness in the workload layer, so the same request stream can be
// replayed through different system models (n-tier vs tandem) for an
// apples-to-apples comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace memca::queueing {

struct TierTrace {
  SimTime enter = -1;
  /// First moment a local worker picked the request up; the gap from enter
  /// is pure queue wait (distinct from downstream residence).
  SimTime service_start = -1;
  SimTime leave = -1;
};

struct Request {
  using Id = std::int64_t;

  Id id = 0;
  /// Workload page class (index into the page profile table), -1 if n/a.
  int page_class = -1;
  /// Client/user index that issued the request, -1 if n/a.
  int user = -1;
  /// TCP retransmission attempt (0 = first transmission).
  int attempt = 0;
  /// Time the *first* transmission of this logical request left the client.
  SimTime first_sent = 0;
  /// Time this attempt left the client.
  SimTime sent = 0;

  /// Per-tier service demand: microseconds of work at speed 1.0.
  std::vector<double> demand_us;
  /// Per-tier enter/leave timestamps, filled by the tiers.
  std::vector<TierTrace> trace;

  /// Arena bookkeeping, owned by RequestPool: the request's slot index and
  /// its generation word (LSB set while the request is live). A released
  /// request keeps its slot and bumps the generation, so a stale pointer or
  /// handle from a previous occupancy can be detected. Zero-initialised
  /// (gen 0, not live) for requests constructed outside a pool.
  std::uint32_t pool_slot = 0;
  std::uint32_t pool_gen = 0;

  /// Tier residence time (leave - enter), -1 if the request never left.
  SimTime tier_time(std::size_t tier) const {
    if (tier >= trace.size() || trace[tier].enter < 0 || trace[tier].leave < 0) return -1;
    return trace[tier].leave - trace[tier].enter;
  }

  /// Queue wait at the tier (service_start - enter), -1 if never served.
  SimTime wait_time(std::size_t tier) const {
    if (tier >= trace.size() || trace[tier].enter < 0 || trace[tier].service_start < 0) {
      return -1;
    }
    return trace[tier].service_start - trace[tier].enter;
  }
};

}  // namespace memca::queueing
