// Minimal surface shared by the two system models (n-tier and tandem), so
// workload generators, probers and routers can drive either interchangeably.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "queueing/request.h"

namespace memca::trace {
class TraceRecorder;
}  // namespace memca::trace

namespace memca::queueing {

class RequestSystem {
 public:
  virtual ~RequestSystem() = default;

  /// Number of tiers/stations a request passes through (demand_us size).
  virtual std::size_t depth() const = 0;
  /// Submits a request; returns false if it was dropped immediately.
  virtual bool submit(std::unique_ptr<Request> req) = 0;
  virtual void set_on_complete(std::function<void(const Request&)> fn) = 0;
  virtual void set_on_drop(std::function<void(const Request&)> fn) = 0;

  // -- shared counters (lifetime totals) ------------------------------------
  virtual std::int64_t submitted() const = 0;
  virtual std::int64_t completed() const = 0;
  /// Attempts the system rejected (each one triggers the drop callback
  /// exactly once — the client's TCP layer retransmits).
  virtual std::int64_t dropped() const = 0;

  /// Attaches a span-event recorder to every tier/station of the system
  /// (nullptr detaches). The system does not own the recorder.
  virtual void set_trace(trace::TraceRecorder* recorder) = 0;
};

}  // namespace memca::queueing
