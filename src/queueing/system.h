// Minimal surface shared by the two system models (n-tier and tandem), so
// workload generators, probers and routers can drive either interchangeably.
//
// The system owns a RequestPool and with it every request in flight: callers
// acquire() a pooled request, fill it in, and submit(Request*); the system
// releases the request back to the pool after the completion or drop
// callback returns. Ownership by pool slot replaces the per-request
// unique_ptr plus unordered_map in-flight table of earlier revisions —
// completion hands the callback the same pointer that travelled the tiers,
// with no hash probe and no free(). Callbacks are InlineFunctions, so
// delivering one is an indirect call, not a std::function dispatch.
#pragma once

#include <cstdint>

#include "common/inline_callback.h"
#include "queueing/request.h"
#include "queueing/request_pool.h"

namespace memca::trace {
class TraceRecorder;
}  // namespace memca::trace

namespace memca::queueing {

class RequestSystem {
 public:
  using RequestFn = InlineFunction<void(const Request&)>;
  /// Batched completion delivery: a packed span of requests finishing at one
  /// instant (the quantized completion-group drain).
  using BatchRequestFn = InlineFunction<void(Request* const*, std::size_t)>;

  virtual ~RequestSystem() = default;

  /// Number of tiers/stations a request passes through (demand_us size).
  virtual std::size_t depth() const = 0;

  /// Acquires a pooled request (fields reset) for the caller to fill and
  /// submit. Requests that end up not submitted may be released directly.
  Request* acquire() { return pool_.acquire(); }
  RequestPool& pool() { return pool_; }

  /// Submits a pool-owned request; returns false if it was dropped
  /// immediately. Either way the system now owns the request — the pointer
  /// must not be used after the completion/drop callback has run.
  virtual bool submit(Request* req) = 0;

  /// Whether a submit() issued right now would be admitted (entry-point
  /// capacity only). Lets a generator skip work that is wasted on a
  /// rejection — e.g. demand sampling during an overload storm, where
  /// rejected attempts outnumber admissions a thousandfold. Nothing changes
  /// between this check and a synchronous submit, so the answer is exact.
  virtual bool accepting() const { return true; }

  /// Completion callback: fires when a reply reaches the client side. The
  /// referenced request dies when the callback returns.
  void set_on_complete(RequestFn fn) { on_complete_ = std::move(fn); }
  /// Batch completion callback (quantized mode): one call per completion
  /// group instead of one per request. Systems that never batch ignore it;
  /// when unset, a batching system falls back to per-request on_complete.
  /// Every referenced request dies when the callback returns.
  void set_on_complete_batch(BatchRequestFn fn) { on_complete_batch_ = std::move(fn); }
  /// Drop callback: fires when the system rejects an attempt (the client's
  /// TCP layer retransmits). Same lifetime rule as on_complete.
  void set_on_drop(RequestFn fn) { on_drop_ = std::move(fn); }

  // -- shared counters (lifetime totals) ------------------------------------
  std::int64_t submitted() const { return submitted_; }
  std::int64_t completed() const { return completed_; }
  /// Attempts the system rejected (each one triggers the drop callback
  /// exactly once — the client's TCP layer retransmits).
  std::int64_t dropped() const { return dropped_; }
  /// Requests currently owned by the system (admitted, not yet replied).
  std::int64_t in_flight() const { return in_flight_; }

  /// Attaches a span-event recorder to every tier/station of the system
  /// (nullptr detaches). The system does not own the recorder.
  virtual void set_trace(trace::TraceRecorder* recorder) = 0;

  /// Checkpoint of the state shared by both system models: the request pool
  /// and the lifetime counters. The completion/drop callbacks are wiring,
  /// not state, and are left untouched by restore().
  struct CountersSnapshot {
    RequestPool::Snapshot pool;
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0;
    std::int64_t in_flight = 0;
  };

  void capture_counters(CountersSnapshot& out) const {
    pool_.capture(out.pool);
    out.submitted = submitted_;
    out.completed = completed_;
    out.dropped = dropped_;
    out.in_flight = in_flight_;
  }

  void restore_counters(const CountersSnapshot& snap) {
    pool_.restore(snap.pool);
    submitted_ = snap.submitted;
    completed_ = snap.completed;
    dropped_ = snap.dropped;
    in_flight_ = snap.in_flight;
  }

 protected:
  RequestPool pool_;
  RequestFn on_complete_;
  BatchRequestFn on_complete_batch_;
  RequestFn on_drop_;
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t in_flight_ = 0;
};

}  // namespace memca::queueing
