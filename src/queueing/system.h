// Minimal surface shared by the two system models (n-tier and tandem), so
// workload generators, probers and routers can drive either interchangeably.
#pragma once

#include <functional>
#include <memory>

#include "queueing/request.h"

namespace memca::queueing {

class RequestSystem {
 public:
  virtual ~RequestSystem() = default;

  /// Number of tiers/stations a request passes through (demand_us size).
  virtual std::size_t depth() const = 0;
  /// Submits a request; returns false if it was dropped immediately.
  virtual bool submit(std::unique_ptr<Request> req) = 0;
  virtual void set_on_complete(std::function<void(const Request&)> fn) = 0;
  virtual void set_on_drop(std::function<void(const Request&)> fn) = 0;
};

}  // namespace memca::queueing
