#include "queueing/ntier.h"

#include "common/check.h"
#include "common/log.h"

namespace memca::queueing {

NTierSystem::NTierSystem(Simulator& sim, std::vector<TierConfig> tiers)
    : NTierSystem(sim, std::move(tiers), TierFactory{}) {}

NTierSystem::NTierSystem(Simulator& sim, std::vector<TierConfig> tiers,
                         const TierFactory& factory)
    : sim_(sim) {
  MEMCA_CHECK_MSG(!tiers.empty(), "an n-tier system needs at least one tier");
  pool_.set_depth(tiers.size());
  tiers_.reserve(tiers.size());
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    std::unique_ptr<TierServer> tier;
    if (factory) tier = factory(sim_, pool_, tiers[i], i);
    if (!tier) tier = std::make_unique<TierServer>(sim_, pool_, tiers[i], i);
    tiers_.push_back(std::move(tier));
  }
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
    tiers_[i]->set_downstream(tiers_[i + 1].get());
  }
  tiers_.front()->set_reply_sink([this](Request* r) { on_reply(r); });
  // Quantized mode is a chain-wide property: demands are rounded once, at
  // stage_demands time, so every tier must share one grid.
  const std::uint32_t quantum = tiers_.front()->config().service_quantum_us;
  for (std::size_t i = 1; i < tiers_.size(); ++i) {
    MEMCA_CHECK_MSG(tiers_[i]->config().service_quantum_us == quantum,
                    "service_quantum_us must be uniform across the tier chain");
  }
  if (quantum > 0) {
    pool_.hot().set_quantum(static_cast<double>(quantum));
    tiers_.front()->set_batch_reply_sink(
        [this](Request* const* reqs, std::size_t n) { on_reply_batch(reqs, n); });
  }
  if (!satisfies_condition1()) {
    MEMCA_LOG(kInfo) << "tier thread limits are not strictly decreasing; the analytic "
                        "fill-up equations (Condition 1) will not apply";
  }
}

void NTierSystem::set_trace(trace::TraceRecorder* recorder) {
  trace_ = recorder;
  for (auto& tier : tiers_) tier->set_trace(recorder);
}

bool NTierSystem::submit(Request* req) {
  MEMCA_CHECK(req != nullptr);
  MEMCA_CHECK_MSG(req->demand_us.size() == tiers_.size(),
                  "request needs one demand entry per tier");
  ++submitted_;
  if (!tiers_.front()->try_submit(req)) {
    ++dropped_;
    trace::emit(trace_, trace::TraceEvent{sim_.now(), req->id, 0, 0.0, req->user, 0,
                                          trace::EventKind::kDrop,
                                          static_cast<std::uint8_t>(req->attempt())});
    if (on_drop_) on_drop_(*req);
    // Released only after the callback: a reentrant submit from inside
    // on_drop_ must not recycle this request out from under the caller.
    pool_.release(req);
    return false;
  }
  ++in_flight_;
  return true;
}

TierServer& NTierSystem::tier(std::size_t i) {
  MEMCA_CHECK(i < tiers_.size());
  return *tiers_[i];
}

const TierServer& NTierSystem::tier(std::size_t i) const {
  MEMCA_CHECK(i < tiers_.size());
  return *tiers_[i];
}

bool NTierSystem::satisfies_condition1() const {
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
    if (tiers_[i]->threads() <= tiers_[i + 1]->threads()) return false;
  }
  return true;
}

void NTierSystem::on_reply(Request* req) {
  ++completed_;
  MEMCA_DCHECK(in_flight_ > 0);
  --in_flight_;
  if (on_complete_) on_complete_(*req);
  pool_.release(req);
}

void NTierSystem::on_reply_batch(Request* const* reqs, std::size_t n) {
  completed_ += static_cast<std::int64_t>(n);
  MEMCA_DCHECK(in_flight_ >= static_cast<std::int64_t>(n));
  in_flight_ -= static_cast<std::int64_t>(n);
  if (on_complete_batch_) {
    on_complete_batch_(reqs, n);
  } else if (on_complete_) {
    for (std::size_t i = 0; i < n; ++i) on_complete_(*reqs[i]);
  }
  // Released only after the callbacks, matching on_reply's reentrancy rule.
  for (std::size_t i = 0; i < n; ++i) pool_.release(reqs[i]);
}

}  // namespace memca::queueing
