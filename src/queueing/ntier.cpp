#include "queueing/ntier.h"

#include "common/check.h"
#include "common/log.h"

namespace memca::queueing {

NTierSystem::NTierSystem(Simulator& sim, std::vector<TierConfig> tiers) : sim_(sim) {
  MEMCA_CHECK_MSG(!tiers.empty(), "an n-tier system needs at least one tier");
  tiers_.reserve(tiers.size());
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    tiers_.push_back(std::make_unique<TierServer>(sim_, tiers[i], i));
  }
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
    tiers_[i]->set_downstream(tiers_[i + 1].get());
  }
  tiers_.front()->set_reply_sink([this](Request* r) { on_reply(r); });
  if (!satisfies_condition1()) {
    MEMCA_LOG(kInfo) << "tier thread limits are not strictly decreasing; the analytic "
                        "fill-up equations (Condition 1) will not apply";
  }
}

void NTierSystem::set_on_complete(std::function<void(const Request&)> fn) {
  on_complete_ = std::move(fn);
}

void NTierSystem::set_on_drop(std::function<void(const Request&)> fn) {
  on_drop_ = std::move(fn);
}

void NTierSystem::set_trace(trace::TraceRecorder* recorder) {
  trace_ = recorder;
  for (auto& tier : tiers_) tier->set_trace(recorder);
}

bool NTierSystem::submit(std::unique_ptr<Request> req) {
  MEMCA_CHECK(req != nullptr);
  MEMCA_CHECK_MSG(req->demand_us.size() == tiers_.size(),
                  "request needs one demand entry per tier");
  req->trace.assign(tiers_.size(), TierTrace{});
  ++submitted_;
  Request* raw = req.get();
  if (!tiers_.front()->try_submit(raw)) {
    ++dropped_;
    trace::emit(trace_, trace::TraceEvent{sim_.now(), raw->id, 0, 0.0, raw->user, 0,
                                          trace::EventKind::kDrop,
                                          static_cast<std::uint8_t>(raw->attempt)});
    if (on_drop_) on_drop_(*raw);
    return false;
  }
  in_flight_.emplace(raw->id, std::move(req));
  return true;
}

TierServer& NTierSystem::tier(std::size_t i) {
  MEMCA_CHECK(i < tiers_.size());
  return *tiers_[i];
}

const TierServer& NTierSystem::tier(std::size_t i) const {
  MEMCA_CHECK(i < tiers_.size());
  return *tiers_[i];
}

bool NTierSystem::satisfies_condition1() const {
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
    if (tiers_[i]->threads() <= tiers_[i + 1]->threads()) return false;
  }
  return true;
}

void NTierSystem::on_reply(Request* req) {
  ++completed_;
  auto it = in_flight_.find(req->id);
  MEMCA_CHECK_MSG(it != in_flight_.end(), "reply for unknown request");
  // Move ownership out before the callback so reentrant submits are safe.
  std::unique_ptr<Request> owned = std::move(it->second);
  in_flight_.erase(it);
  if (on_complete_) on_complete_(*owned);
}

}  // namespace memca::queueing
