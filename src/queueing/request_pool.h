// Slab arena for Request objects — the request-lifecycle allocator.
//
// The full testbed churns through millions of requests per run; allocating
// each as a unique_ptr means a malloc/free pair per request plus cold vector
// buffers for demand_us every time. The pool places Request bodies in
// fixed-size chunks (chunks are never relocated, so growth never moves a
// live request) and recycles released slots through a LIFO free list
// *without destroying the Request*: the recycled object's demand vector
// keeps its capacity, so a warmed-up steady state acquires and releases
// with zero heap traffic.
//
// The pool also owns the RequestHotArena: the slot-indexed SoA lanes holding
// the per-event hot fields (timestamps, lifecycle state, attempt counter).
// Arena lanes grow in lockstep with the slot high-water mark, and tier code
// addresses them by slot index — the body is only chased for cold fields
// (demand, identity) once per service.
//
// Slots are generation-tagged like the simulator's closure slots: the
// request's pool_gen word carries a live bit (LSB) and a generation count,
// bumped on every release. A Handle snapshotting (slot, gen) resolves to
// the request only while that occupancy is still live, which makes stale
// references from a previous occupancy detectable instead of silently
// aliasing the recycled object.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "queueing/request.h"

namespace memca::queueing {

class RequestPool {
 public:
  /// Weak reference to one pool occupancy; resolves to nullptr once the
  /// request has been released (even if the slot was since re-acquired).
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  RequestPool() = default;
  ~RequestPool();
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Fixes the hot arena's tier depth; must run before the first acquire().
  void set_depth(std::size_t depth) { hot_.set_depth(depth); }

  /// The hot-field SoA arena (per-slot lanes). Tier hot paths write lanes
  /// directly by slot; tests read them for lifecycle assertions.
  RequestHotArena& hot() { return hot_; }
  const RequestHotArena& hot() const { return hot_; }

  /// Returns a live request with every scalar field (body and hot lanes)
  /// reset to its default and demand_us cleared (capacity retained). Pointer
  /// stays valid until release() — pool growth never relocates it.
  Request* acquire();

  /// Returns `req` to the free list. Must be live and from this pool; the
  /// generation bump invalidates outstanding Handles to this occupancy.
  void release(Request* req);

  /// The live request body at `slot` (hot paths that carry slot indices
  /// chase this only for cold fields).
  Request* get(std::uint32_t slot) {
    MEMCA_DCHECK(slot < num_slots_);
    return slot_ptr(slot);
  }
  const Request* get(std::uint32_t slot) const {
    MEMCA_DCHECK(slot < num_slots_);
    return slot_ptr(slot);
  }

  /// True if `slot` currently holds a live (acquired) request.
  bool slot_live(std::uint32_t slot) const {
    return slot < num_slots_ && (slot_ptr(slot)->pool_gen & 1u) != 0;
  }

  /// Handle to a live request's current occupancy.
  Handle handle_of(const Request* req) const {
    MEMCA_DCHECK(req != nullptr && (req->pool_gen & 1u) != 0);
    return Handle{req->pool_slot, req->pool_gen};
  }

  /// The request behind `h`, or nullptr if that occupancy was released.
  Request* resolve(Handle h) {
    if (h.slot >= num_slots_) return nullptr;
    Request* req = slot_ptr(h.slot);
    return req->pool_gen == h.gen && (h.gen & 1u) != 0 ? req : nullptr;
  }

  /// Currently acquired (not yet released) requests.
  std::size_t live() const { return live_; }
  /// Slots ever created — the pool's occupancy high-water mark.
  std::uint32_t slots() const { return num_slots_; }

  /// Checkpoint of the pool: per-slot generation words, the free list, the
  /// full body of every live request, and the hot-arena lanes. restore()
  /// writes the state back into the same slots — request pointers captured
  /// elsewhere (queues, in-flight tables) stay valid — and never allocates,
  /// because a recycled request's vectors and the arena lanes only ever
  /// gain capacity after the capture.
  struct Snapshot {
    struct SlotState {
      std::uint32_t gen = 0;
      Request::Id id = 0;
      int page_class = -1;
      int user = -1;
      std::vector<double> demand_us;
    };
    std::uint32_t num_slots = 0;
    std::size_t live = 0;
    std::vector<SlotState> slots;
    std::vector<std::uint32_t> free_list;
    RequestHotArena::Snapshot hot;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

 private:
  static constexpr std::uint32_t kChunkShift = 8;  // 256 requests per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  Request* slot_ptr(std::uint32_t index) {
    return std::launder(reinterpret_cast<Request*>(
        chunks_[index >> kChunkShift].get() + sizeof(Request) * (index & kChunkMask)));
  }
  const Request* slot_ptr(std::uint32_t index) const {
    return std::launder(reinterpret_cast<const Request*>(
        chunks_[index >> kChunkShift].get() + sizeof(Request) * (index & kChunkMask)));
  }

  /// Raw chunk storage: requests are placement-constructed on first use of a
  /// slot and destroyed only by ~RequestPool.
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  /// Slots that hold a constructed Request — never decreases. A checkpoint
  /// rollback shrinks num_slots_, and regrowth then revives the still-
  /// constructed object in place instead of placement-constructing over it.
  std::uint32_t constructed_ = 0;
  std::size_t live_ = 0;
  /// LIFO recycling stack: the most recently released request is the next
  /// acquired, so its vectors (and the cache lines under them) are warm.
  std::vector<std::uint32_t> free_;
  /// Hot-field SoA lanes, indexed by the same slot numbers.
  RequestHotArena hot_;
};

}  // namespace memca::queueing
