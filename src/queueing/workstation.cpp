#include "queueing/workstation.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace memca::queueing {

WorkStation::WorkStation(Simulator& sim, int workers,
                         InlineFunction<void(std::uint32_t)> on_done)
    : sim_(sim),
      on_done_(std::move(on_done)),
      slots_(static_cast<std::size_t>(workers)),
      batch_key_(sim.new_batch_key()) {
  MEMCA_CHECK_MSG(workers >= 1, "a station needs at least one worker");
  MEMCA_CHECK_MSG(static_cast<bool>(on_done_), "WorkStation needs a completion callback");
  busy_last_change_ = sim_.now();
  bind_completion_thunks(0);
  rebuild_free_mask();
}

void WorkStation::enable_batch_completions(
    SimTime quantum_us, InlineFunction<void(const std::uint32_t*, std::size_t)> on_batch) {
  MEMCA_CHECK_MSG(quantum_us > 0, "completion quantum must be positive");
  MEMCA_CHECK_MSG(static_cast<bool>(on_batch), "batch mode needs a batch callback");
  MEMCA_CHECK_MSG(quantum_ == 0 && busy_ == 0,
                  "batch completions must be enabled once, before any service starts");
  quantum_ = quantum_us;
  on_batch_done_ = std::move(on_batch);
  reserve_batch_storage();
}

void WorkStation::reserve_batch_storage() {
  if (quantum_ == 0) return;
  // Worst case every busy worker completes at a distinct instant (groups) or
  // at one instant (batch span), so worker-count capacity bounds both.
  groups_.reserve(slots_.size());
  cancel_scratch_.reserve(slots_.size());
  batch_buf_.reserve(slots_.size());
  group_next_.resize(slots_.size(), kNoSlot);
}

void WorkStation::rebuild_free_mask() {
  free_mask_.assign((slots_.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].busy && !slots_[i].retired) mask_set(i);
  }
}

void WorkStation::bind_completion_thunks(std::size_t first) {
  for (std::size_t i = first; i < slots_.size(); ++i) {
    slots_[i].fire = CompletionFire{this, static_cast<std::uint32_t>(i)};
  }
}

void WorkStation::accrue_busy_time() {
  const SimTime now = sim_.now();
  // Same-instant transitions (a batch of completions, a complete-then-start
  // pair) contribute zero area; skip the load-add-store of the integral.
  if (now == busy_last_change_) return;
  busy_time_us_ += static_cast<double>(busy_) * static_cast<double>(now - busy_last_change_);
  busy_last_change_ = now;
}

double WorkStation::busy_worker_time_us() const {
  return busy_time_us_ +
         static_cast<double>(busy_) * static_cast<double>(sim_.now() - busy_last_change_);
}

void WorkStation::add_workers(int n) {
  MEMCA_CHECK_MSG(n > 0, "must add at least one worker");
  // Settle the busy-time integral first: utilization normalisation changes
  // capacity from here on and the integral must stay exact.
  accrue_busy_time();
  // Revive retired slots first, then grow.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (n == 0) break;
    Slot& s = slots_[i];
    if (s.retired) {
      s.retired = false;
      --retired_;
      --n;
      if (!s.busy) mask_set(i);
    }
  }
  if (pending_retire_ > 0) {
    const int cancel = std::min(pending_retire_, n);
    pending_retire_ -= cancel;
    n -= cancel;
  }
  if (n > 0) {
    const std::size_t old_size = slots_.size();
    slots_.resize(old_size + static_cast<std::size_t>(n));
    bind_completion_thunks(old_size);
    free_mask_.resize((slots_.size() + 63) / 64, 0);
    for (std::size_t i = old_size; i < slots_.size(); ++i) mask_set(i);
    reserve_batch_storage();
  }
}

void WorkStation::remove_workers(int n) {
  MEMCA_CHECK_MSG(n > 0, "must remove at least one worker");
  MEMCA_CHECK_MSG(workers() - pending_retire_ - n >= 1,
                  "a station must keep at least one worker");
  accrue_busy_time();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (n == 0) break;
    Slot& s = slots_[i];
    if (!s.busy && !s.retired) {
      s.retired = true;
      ++retired_;
      --n;
      mask_clear(i);
    }
  }
  // The remainder retires as busy workers finish their current request.
  pending_retire_ += n;
}

void WorkStation::start(std::uint32_t payload, double work_us) {
  MEMCA_CHECK_MSG(has_free_worker(), "WorkStation::start requires a free worker");
  MEMCA_CHECK_MSG(work_us >= 0.0, "work must be non-negative");
  for (std::size_t w = 0; w < free_mask_.size(); ++w) {
    if (free_mask_[w] == 0) continue;
    const std::size_t i = (w << 6) + static_cast<std::size_t>(
                                         std::countr_zero(free_mask_[w]));
    Slot& s = slots_[i];
    accrue_busy_time();
    s.busy = true;
    s.payload = payload;
    s.remaining_work = work_us;
    s.last_update = sim_.now();
    ++busy_;
    mask_clear(i);
    schedule_completion(i);
    return;
  }
}

void WorkStation::schedule_completion(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  const double duration_us = s.remaining_work / speed_;
  // Ceil so non-zero work always takes at least one tick: guarantees progress
  // and preserves event-order determinism.
  const SimTime delay = static_cast<SimTime>(std::ceil(duration_us));
  if (quantum_ == 0) {
    s.done = sim_.schedule_batched(sim_.now() + delay, batch_key_, s.fire);
    return;
  }
  // Quantized mode: round the completion *instant* up onto the grid. Demands
  // are already grid multiples (RequestHotArena::stage_demands), so this
  // re-grids the two off-grid cases — a service started mid-grid on an idle
  // worker, and a degraded-service extension after set_speed rescaling —
  // at a cost of at most one quantum of extra residence.
  const SimTime raw = sim_.now() + delay;
  const SimTime when = ((raw + quantum_ - 1) / quantum_) * quantum_;
  join_group(static_cast<std::uint32_t>(slot_index), when);
}

void WorkStation::join_group(std::uint32_t slot_index, SimTime when) {
  group_next_[slot_index] = kNoSlot;
  for (Group& g : groups_) {
    if (g.when != when) continue;
    group_next_[g.tail] = slot_index;
    g.tail = slot_index;
    return;
  }
  Group g;
  g.when = when;
  g.head = g.tail = slot_index;
  g.ev = sim_.schedule_batched(when, batch_key_, GroupFire{this, when});
  groups_.push_back(g);  // within reserved capacity: never allocates mid-run
}

void WorkStation::fire_group(SimTime when) {
  std::size_t gi = groups_.size();
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].when == when) {
      gi = i;
      break;
    }
  }
  MEMCA_CHECK_MSG(gi < groups_.size(), "completion fired for an unknown group");
  std::uint32_t next = groups_[gi].head;
  groups_[gi] = groups_.back();
  groups_.pop_back();
  // Free every member first — the batch callback sees all of the group's
  // workers available, the batch-wide counterpart of the per-slot "worker is
  // already free when on_done runs" contract.
  accrue_busy_time();
  batch_buf_.clear();
  while (next != kNoSlot) {
    const std::uint32_t i = next;
    next = group_next_[i];
    group_next_[i] = kNoSlot;
    Slot& s = slots_[i];
    MEMCA_CHECK(s.busy);
    batch_buf_.push_back(s.payload);
    s.busy = false;
    s.payload = 0;
    s.remaining_work = 0.0;
    --busy_;
    ++completed_;
    if (pending_retire_ > 0) {
      s.retired = true;
      ++retired_;
      --pending_retire_;
    } else {
      mask_set(i);
    }
  }
  on_batch_done_(batch_buf_.data(), batch_buf_.size());
}

void WorkStation::complete(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  MEMCA_CHECK(s.busy);
  const std::uint32_t payload = s.payload;
  accrue_busy_time();
  s.busy = false;
  s.payload = 0;
  s.remaining_work = 0.0;
  --busy_;
  ++completed_;
  if (pending_retire_ > 0) {
    s.retired = true;
    ++retired_;
    --pending_retire_;
  } else {
    mask_set(slot_index);
  }
  on_done_(payload);
}

void WorkStation::set_speed(double speed) {
  MEMCA_CHECK_MSG(speed > 0.0, "speed must be positive");
  if (speed == speed_) return;
  const SimTime now = sim_.now();
  if (quantum_ > 0 && !groups_.empty()) {
    // Every in-flight completion moves: kill all group events in one bulk
    // cancel (one sweep decision instead of one per group) and regroup below.
    cancel_scratch_.clear();
    for (const Group& g : groups_) cancel_scratch_.push_back(g.ev);
    sim_.cancel_bulk(cancel_scratch_.data(), cancel_scratch_.size());
    groups_.clear();
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.busy) continue;
    // Progress already made at the old speed.
    const double elapsed_us = static_cast<double>(now - s.last_update);
    s.remaining_work = std::max(0.0, s.remaining_work - elapsed_us * speed_);
    s.last_update = now;
    if (quantum_ == 0) s.done.cancel();
  }
  speed_ = speed;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].busy) schedule_completion(i);
  }
}

}  // namespace memca::queueing
