#include "queueing/workstation.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace memca::queueing {

WorkStation::WorkStation(Simulator& sim, int workers,
                         InlineFunction<void(std::uint32_t)> on_done)
    : sim_(sim),
      on_done_(std::move(on_done)),
      slots_(static_cast<std::size_t>(workers)),
      batch_key_(sim.new_batch_key()) {
  MEMCA_CHECK_MSG(workers >= 1, "a station needs at least one worker");
  MEMCA_CHECK_MSG(static_cast<bool>(on_done_), "WorkStation needs a completion callback");
  busy_last_change_ = sim_.now();
  bind_completion_thunks(0);
  rebuild_free_mask();
}

void WorkStation::rebuild_free_mask() {
  free_mask_.assign((slots_.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].busy && !slots_[i].retired) mask_set(i);
  }
}

void WorkStation::bind_completion_thunks(std::size_t first) {
  for (std::size_t i = first; i < slots_.size(); ++i) {
    slots_[i].fire = CompletionFire{this, static_cast<std::uint32_t>(i)};
  }
}

void WorkStation::accrue_busy_time() {
  const SimTime now = sim_.now();
  // Same-instant transitions (a batch of completions, a complete-then-start
  // pair) contribute zero area; skip the load-add-store of the integral.
  if (now == busy_last_change_) return;
  busy_time_us_ += static_cast<double>(busy_) * static_cast<double>(now - busy_last_change_);
  busy_last_change_ = now;
}

double WorkStation::busy_worker_time_us() const {
  return busy_time_us_ +
         static_cast<double>(busy_) * static_cast<double>(sim_.now() - busy_last_change_);
}

void WorkStation::add_workers(int n) {
  MEMCA_CHECK_MSG(n > 0, "must add at least one worker");
  // Settle the busy-time integral first: utilization normalisation changes
  // capacity from here on and the integral must stay exact.
  accrue_busy_time();
  // Revive retired slots first, then grow.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (n == 0) break;
    Slot& s = slots_[i];
    if (s.retired) {
      s.retired = false;
      --retired_;
      --n;
      if (!s.busy) mask_set(i);
    }
  }
  if (pending_retire_ > 0) {
    const int cancel = std::min(pending_retire_, n);
    pending_retire_ -= cancel;
    n -= cancel;
  }
  if (n > 0) {
    const std::size_t old_size = slots_.size();
    slots_.resize(old_size + static_cast<std::size_t>(n));
    bind_completion_thunks(old_size);
    free_mask_.resize((slots_.size() + 63) / 64, 0);
    for (std::size_t i = old_size; i < slots_.size(); ++i) mask_set(i);
  }
}

void WorkStation::remove_workers(int n) {
  MEMCA_CHECK_MSG(n > 0, "must remove at least one worker");
  MEMCA_CHECK_MSG(workers() - pending_retire_ - n >= 1,
                  "a station must keep at least one worker");
  accrue_busy_time();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (n == 0) break;
    Slot& s = slots_[i];
    if (!s.busy && !s.retired) {
      s.retired = true;
      ++retired_;
      --n;
      mask_clear(i);
    }
  }
  // The remainder retires as busy workers finish their current request.
  pending_retire_ += n;
}

void WorkStation::start(std::uint32_t payload, double work_us) {
  MEMCA_CHECK_MSG(has_free_worker(), "WorkStation::start requires a free worker");
  MEMCA_CHECK_MSG(work_us >= 0.0, "work must be non-negative");
  for (std::size_t w = 0; w < free_mask_.size(); ++w) {
    if (free_mask_[w] == 0) continue;
    const std::size_t i = (w << 6) + static_cast<std::size_t>(
                                         std::countr_zero(free_mask_[w]));
    Slot& s = slots_[i];
    accrue_busy_time();
    s.busy = true;
    s.payload = payload;
    s.remaining_work = work_us;
    s.last_update = sim_.now();
    ++busy_;
    mask_clear(i);
    schedule_completion(i);
    return;
  }
}

void WorkStation::schedule_completion(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  const double duration_us = s.remaining_work / speed_;
  // Ceil so non-zero work always takes at least one tick: guarantees progress
  // and preserves event-order determinism.
  const SimTime delay = static_cast<SimTime>(std::ceil(duration_us));
  s.done = sim_.schedule_batched(sim_.now() + delay, batch_key_, s.fire);
}

void WorkStation::complete(std::size_t slot_index) {
  Slot& s = slots_[slot_index];
  MEMCA_CHECK(s.busy);
  const std::uint32_t payload = s.payload;
  accrue_busy_time();
  s.busy = false;
  s.payload = 0;
  s.remaining_work = 0.0;
  --busy_;
  ++completed_;
  if (pending_retire_ > 0) {
    s.retired = true;
    ++retired_;
    --pending_retire_;
  } else {
    mask_set(slot_index);
  }
  on_done_(payload);
}

void WorkStation::set_speed(double speed) {
  MEMCA_CHECK_MSG(speed > 0.0, "speed must be positive");
  if (speed == speed_) return;
  const SimTime now = sim_.now();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.busy) continue;
    // Progress already made at the old speed.
    const double elapsed_us = static_cast<double>(now - s.last_update);
    s.remaining_work = std::max(0.0, s.remaining_work - elapsed_us * speed_);
    s.last_update = now;
    s.done.cancel();
  }
  speed_ = speed;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].busy) schedule_completion(i);
  }
}

}  // namespace memca::queueing
