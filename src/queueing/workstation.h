// A bank of workers executing work-based service with live speed scaling.
//
// Each worker serves one request at a time; the request carries an amount of
// work (microseconds at speed 1.0) and the station runs at a global speed
// multiplier. When the speed changes — the MemCA burst throttling the victim
// tier — remaining work of every in-flight request is re-scaled and its
// completion event rescheduled. This is what makes a 100 ms capacity dip
// interact correctly with millisecond-scale services.
//
// The station also integrates busy-worker time, which is exactly what an
// OS-level CPU utilization monitor sees: a memory-stalled core counts as
// busy, so during a burst utilization shows transient saturation (Fig. 9b)
// even though throughput has collapsed.
#pragma once

#include <algorithm>
#include <vector>

#include "common/inline_callback.h"
#include "queueing/request.h"
#include "sim/simulator.h"

namespace memca::queueing {

class WorkStation {
 public:
  /// `on_done` fires when a request's service completes; the worker is
  /// already free when it runs.
  WorkStation(Simulator& sim, int workers, InlineFunction<void(Request*)> on_done);
  WorkStation(const WorkStation&) = delete;
  WorkStation& operator=(const WorkStation&) = delete;

  int workers() const { return static_cast<int>(slots_.size()) - retired_; }
  int busy() const { return busy_; }
  bool has_free_worker() const { return busy_ < workers(); }

  /// Adds `n` idle workers (elastic scale-out). The caller is responsible
  /// for re-pumping its wait queue afterwards.
  void add_workers(int n);

  /// Retires `n` workers (elastic scale-in). Idle workers retire
  /// immediately; busy ones finish their current request first, so
  /// `workers()` may exceed the target transiently.
  void remove_workers(int n);

  /// Starts serving `req` with `work_us` microseconds of speed-1 work.
  /// Requires a free worker.
  void start(Request* req, double work_us);

  /// Changes the station speed (must be > 0); rescales in-flight services.
  void set_speed(double speed);
  double speed() const { return speed_; }

  /// Integral of busy workers over time, in worker-microseconds. Divide a
  /// delta by (workers * window) to get utilization over that window.
  double busy_worker_time_us() const;

  /// Total services completed.
  std::int64_t completed() const { return completed_; }

 private:
  /// The completion closure scheduled for a slot's in-flight service.
  /// Trivially copyable, so the simulator stores it inline with no manager;
  /// built once per slot at construction (not re-materialised per start()).
  struct CompletionFire {
    WorkStation* station = nullptr;
    std::uint32_t slot = 0;
    void operator()() const { station->complete(slot); }
  };

  struct Slot {
    bool busy = false;
    bool retired = false;
    Request* req = nullptr;
    double remaining_work = 0.0;  // microseconds at speed 1.0
    SimTime last_update = 0;
    EventHandle done;
    CompletionFire fire;
  };

  void accrue_busy_time();
  /// (Re)binds the per-slot completion thunks; called whenever slots_ grows.
  void bind_completion_thunks(std::size_t first);
  void schedule_completion(std::size_t slot_index);
  void complete(std::size_t slot_index);

  Simulator& sim_;
  InlineFunction<void(Request*)> on_done_;
  std::vector<Slot> slots_;
  double speed_ = 1.0;
  int busy_ = 0;
  int retired_ = 0;
  int pending_retire_ = 0;
  std::int64_t completed_ = 0;
  // busy-time integral
  double busy_time_us_ = 0.0;
  SimTime busy_last_change_ = 0;

 public:
  /// Checkpoint of the worker bank. Slot records are value-copied: the
  /// `done` EventHandle stays valid because the simulator restores the same
  /// arena occupancy, the `fire` thunk points back at this station, and the
  /// `req` pointer at a pool slot that never relocates. Elastic growth after
  /// a capture is not restorable (restore checks the worker count).
  struct Snapshot {
    std::vector<Slot> slots;
    double speed = 1.0;
    int busy = 0;
    int retired = 0;
    int pending_retire = 0;
    std::int64_t completed = 0;
    double busy_time_us = 0.0;
    SimTime busy_last_change = 0;
  };

  void capture(Snapshot& out) const {
    out.slots.assign(slots_.begin(), slots_.end());
    out.speed = speed_;
    out.busy = busy_;
    out.retired = retired_;
    out.pending_retire = pending_retire_;
    out.completed = completed_;
    out.busy_time_us = busy_time_us_;
    out.busy_last_change = busy_last_change_;
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK_MSG(snap.slots.size() == slots_.size(),
                    "cannot roll back across an elastic worker-count change");
    std::copy(snap.slots.begin(), snap.slots.end(), slots_.begin());
    speed_ = snap.speed;
    busy_ = snap.busy;
    retired_ = snap.retired;
    pending_retire_ = snap.pending_retire;
    completed_ = snap.completed;
    busy_time_us_ = snap.busy_time_us;
    busy_last_change_ = snap.busy_last_change;
  }
};

}  // namespace memca::queueing
