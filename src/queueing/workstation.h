// A bank of workers executing work-based service with live speed scaling.
//
// Each worker serves one payload at a time; the payload is an opaque 32-bit
// token (the tiers pass request-pool slot indices) carrying an amount of
// work (microseconds at speed 1.0), and the station runs at a global speed
// multiplier. When the speed changes — the MemCA burst throttling the victim
// tier — remaining work of every in-flight service is re-scaled and its
// completion event rescheduled. This is what makes a 100 ms capacity dip
// interact correctly with millisecond-scale services.
//
// Completion events are tagged with a per-station batch key: when several
// services of one station complete at the same instant, each completion
// callback can ask the simulator whether another member of the batch fires
// next (Simulator::batch_continues) and defer commutative bookkeeping to the
// batch's last member. The tag never changes firing order.
//
// Quantized mode (enable_batch_completions) goes further: completion
// *instants* are rounded up onto a fixed microsecond grid and every service
// of this station landing on one grid instant is a completion *group* —
// one simulator event fires the whole group and hands the freed payloads to
// a batch callback as a packed span, instead of one event per worker. This
// is a deliberate event-stream change (services run ≤ one quantum longer,
// batch members complete simultaneously); the default per-worker path stays
// byte-identical when the mode is off.
//
// The station also integrates busy-worker time, which is exactly what an
// OS-level CPU utilization monitor sees: a memory-stalled core counts as
// busy, so during a burst utilization shows transient saturation (Fig. 9b)
// even though throughput has collapsed.
#pragma once

#include <algorithm>
#include <vector>

#include "common/cache_line.h"
#include "common/inline_callback.h"
#include "sim/simulator.h"

namespace memca::queueing {

class WorkStation {
 public:
  /// `on_done` fires with the service's payload when it completes; the
  /// worker is already free when it runs.
  WorkStation(Simulator& sim, int workers, InlineFunction<void(std::uint32_t)> on_done);
  WorkStation(const WorkStation&) = delete;
  WorkStation& operator=(const WorkStation&) = delete;

  int workers() const { return static_cast<int>(slots_.size()) - retired_; }
  int busy() const { return busy_; }
  bool has_free_worker() const { return busy_ < workers(); }

  /// Adds `n` idle workers (elastic scale-out). The caller is responsible
  /// for re-pumping its wait queue afterwards.
  void add_workers(int n);

  /// Retires `n` workers (elastic scale-in). Idle workers retire
  /// immediately; busy ones finish their current request first, so
  /// `workers()` may exceed the target transiently.
  void remove_workers(int n);

  /// Starts serving `payload` with `work_us` microseconds of speed-1 work.
  /// Requires a free worker.
  void start(std::uint32_t payload, double work_us);

  /// Changes the station speed (must be > 0); rescales in-flight services.
  void set_speed(double speed);
  double speed() const { return speed_; }

  /// Switches the station into quantized grouped-completion mode (see file
  /// comment): completion instants round up onto the `quantum_us` grid and
  /// all same-instant completions fire through ONE simulator event, handing
  /// `on_batch` a packed span of payloads in service-start order (workers
  /// already freed when it runs). Call once, before any service starts.
  void enable_batch_completions(
      SimTime quantum_us, InlineFunction<void(const std::uint32_t*, std::size_t)> on_batch);
  bool batch_mode() const { return quantum_ > 0; }
  SimTime quantum() const { return quantum_; }
  /// Completion groups currently armed (quantized mode; 0 otherwise).
  std::size_t pending_groups() const { return groups_.size(); }

  /// Integral of busy workers over time, in worker-microseconds. Divide a
  /// delta by (workers * window) to get utilization over that window.
  double busy_worker_time_us() const;

  /// Total services completed.
  std::int64_t completed() const { return completed_; }

 private:
  /// The completion closure scheduled for a slot's in-flight service.
  /// Trivially copyable, so the simulator stores it inline with no manager;
  /// built once per slot at construction (not re-materialised per start()).
  struct CompletionFire {
    WorkStation* station = nullptr;
    std::uint32_t slot = 0;
    void operator()() const { station->complete(slot); }
  };

  /// One worker. Cache-line aligned so firing a completion (flags + payload
  /// + busy-time fields + the done handle) dirties exactly one line and
  /// neighbouring workers never false-share under a future parallel drain.
  struct alignas(kCacheLineSize) Slot {
    bool busy = false;
    bool retired = false;
    std::uint32_t payload = 0;
    double remaining_work = 0.0;  // microseconds at speed 1.0
    SimTime last_update = 0;
    EventHandle done;
    CompletionFire fire;
  };
  static_assert(sizeof(Slot) == kCacheLineSize,
                "worker slot should pack into one cache line");

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One armed completion group (quantized mode): the grid instant, its one
  /// scheduled event, and an intrusive member list threaded through
  /// group_next_ in service-start order. Trivially copyable, so snapshots
  /// value-copy the table and the EventHandle round-trips by value.
  struct Group {
    SimTime when = 0;
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
    EventHandle ev;
  };
  /// The group-completion closure: finds the group by its instant (at most
  /// one group per instant per station) and drains it.
  struct GroupFire {
    WorkStation* station = nullptr;
    SimTime when = 0;
    void operator()() const { station->fire_group(when); }
  };

  void accrue_busy_time();
  /// (Re)binds the per-slot completion thunks; called whenever slots_ grows.
  void bind_completion_thunks(std::size_t first);
  void schedule_completion(std::size_t slot_index);
  void complete(std::size_t slot_index);
  /// Quantized mode: appends the slot to the group at `when`, arming the
  /// group's single event when the instant is new.
  void join_group(std::uint32_t slot_index, SimTime when);
  /// Quantized mode: frees every member of the group at `when` (in
  /// service-start order), then delivers the payload span to on_batch_done_.
  void fire_group(SimTime when);
  /// Reserves group/scratch capacity for the current worker count so the
  /// quantized hot path never allocates.
  void reserve_batch_storage();

  // Availability bitmap over slots_ (bit i set iff slot i is idle and not
  // retired): start() finds its worker with a count-trailing-zeros instead
  // of walking one cache line per slot. The bit scan picks the lowest free
  // index, exactly the slot the linear scan would have chosen, so completion
  // scheduling order — and with it bit-reproducibility — is unchanged.
  void mask_set(std::size_t i) {
    free_mask_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void mask_clear(std::size_t i) {
    free_mask_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void rebuild_free_mask();

  Simulator& sim_;
  InlineFunction<void(std::uint32_t)> on_done_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> free_mask_;
  // -- quantized grouped-completion state (empty/unused when quantum_ == 0) --
  /// Completion-instant grid step; 0 = exact per-worker completions.
  SimTime quantum_ = 0;
  InlineFunction<void(const std::uint32_t*, std::size_t)> on_batch_done_;
  /// Armed groups (at most one per distinct grid instant; ≤ busy workers).
  std::vector<Group> groups_;
  /// Intrusive per-slot group links (lane parallel to slots_, kept out of
  /// the Slot so the worker record stays one cache line).
  std::vector<std::uint32_t> group_next_;
  /// Payload span handed to on_batch_done_; reused across fires.
  std::vector<std::uint32_t> batch_buf_;
  /// set_speed staging for the group events' bulk cancel; reused.
  std::vector<EventHandle> cancel_scratch_;
  double speed_ = 1.0;
  int busy_ = 0;
  int retired_ = 0;
  int pending_retire_ = 0;
  std::int64_t completed_ = 0;
  /// Batch tag for this station's completion events (see file comment).
  std::uint32_t batch_key_ = 0;
  // busy-time integral
  double busy_time_us_ = 0.0;
  SimTime busy_last_change_ = 0;

 public:
  /// Checkpoint of the worker bank. Slot records are value-copied: the
  /// `done` EventHandle stays valid because the simulator restores the same
  /// arena occupancy, the `fire` thunk points back at this station, and the
  /// payload at a pool slot whose body never relocates. Elastic growth after
  /// a capture is not restorable (restore checks the worker count).
  struct Snapshot {
    std::vector<Slot> slots;
    /// Quantized mode: the armed groups (their EventHandles stay valid for
    /// the same reason `done` does) and the member-link lane.
    std::vector<Group> groups;
    std::vector<std::uint32_t> group_next;
    double speed = 1.0;
    int busy = 0;
    int retired = 0;
    int pending_retire = 0;
    std::int64_t completed = 0;
    double busy_time_us = 0.0;
    SimTime busy_last_change = 0;
  };

  void capture(Snapshot& out) const {
    out.slots.assign(slots_.begin(), slots_.end());
    out.groups.assign(groups_.begin(), groups_.end());
    out.group_next.assign(group_next_.begin(), group_next_.end());
    out.speed = speed_;
    out.busy = busy_;
    out.retired = retired_;
    out.pending_retire = pending_retire_;
    out.completed = completed_;
    out.busy_time_us = busy_time_us_;
    out.busy_last_change = busy_last_change_;
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK_MSG(snap.slots.size() == slots_.size(),
                    "cannot roll back across an elastic worker-count change");
    std::copy(snap.slots.begin(), snap.slots.end(), slots_.begin());
    rebuild_free_mask();
    // groups_ capacity was reserved for the worker count at capture time, so
    // this assign never allocates on a post-capture restore.
    groups_.assign(snap.groups.begin(), snap.groups.end());
    std::copy(snap.group_next.begin(), snap.group_next.end(), group_next_.begin());
    speed_ = snap.speed;
    busy_ = snap.busy;
    retired_ = snap.retired;
    pending_retire_ = snap.pending_retire;
    completed_ = snap.completed;
    busy_time_us_ = snap.busy_time_us;
    busy_last_change_ = snap.busy_last_change;
  }
};

}  // namespace memca::queueing
