// Classic tandem queue model (the paper's comparison baseline, Fig. 6a/7a).
//
// In a tandem queue, stations are decoupled: a request waits only in front
// of the station currently serving it, and upstream stations are oblivious
// to downstream congestion. Under a back-end millibottleneck, all queueing
// accumulates in the last station (given an infinite buffer) and every
// tier's observed residence time is essentially the back-end queueing time —
// no cross-tier amplification. Contrasting this with NTierSystem is how the
// paper isolates the RPC thread-holding effect.
//
// Like the n-tier chain, the tandem hot path moves requests as pool-slot
// indices: waiting rooms hold packed u32 slots and per-event stamps land in
// the RequestPool's SoA arena lanes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/ring_queue.h"
#include "queueing/system.h"
#include "queueing/workstation.h"
#include "trace/recorder.h"

namespace memca::queueing {

struct StationConfig {
  std::string name;
  int workers = 2;
  /// Waiting-room capacity (excludes in-service); kUnbounded = infinite.
  int queue_capacity = -1;

  static constexpr int kUnbounded = -1;
};

class TandemQueueSystem : public RequestSystem {
 public:
  TandemQueueSystem(Simulator& sim, std::vector<StationConfig> stations);

  /// Submits a pool-owned request (demand_us must have one entry per
  /// station). Returns false if the front station rejected it.
  bool submit(Request* req) override;

  std::size_t num_stations() const { return stations_.size(); }
  std::size_t depth() const override { return stations_.size(); }
  /// Scales a station's service speed (attack coupling).
  void set_speed_multiplier(std::size_t station, double multiplier);

  int queue_length(std::size_t station) const;
  int in_service(std::size_t station) const;
  /// Waiting + in service at the station.
  int resident(std::size_t station) const;
  const LatencyHistogram& residence_time(std::size_t station) const;
  const std::string& station_name(std::size_t station) const;

  /// Attaches the recorder to every station.
  void set_trace(trace::TraceRecorder* recorder) override { trace_ = recorder; }

 private:
  struct Station {
    StationConfig config;
    std::unique_ptr<WorkStation> workers;
    RingQueue<std::uint32_t> queue;
    LatencyHistogram residence_time;
  };

  void offer(std::size_t index, std::uint32_t slot);
  void pump(std::size_t index);
  void on_service_done(std::size_t index, std::uint32_t slot);
  void finish(std::uint32_t slot);
  /// Drops at station `index` (0 = front reject, i+1 = interior overflow).
  void drop(std::size_t index, Request* req);

  /// Appends this station's consolidated kTierSpan event (queue enter +
  /// service start + service end in one record) iff a recorder is attached.
  /// Called at service end, when all three times are known. In the tandem
  /// model a station's residence ends with its own service, so the span
  /// covers the whole traversal.
  void mark_span(std::size_t station, const Request& req) {
#ifndef MEMCA_TRACE_DISABLED
    if (trace_ == nullptr) return;
    const TierTrace& span = req.trace_at(station);
    trace_->record(trace::TraceEvent{sim_.now(), req.id, span.enter,
                                     static_cast<double>(span.service_start), req.user,
                                     static_cast<std::int16_t>(station),
                                     trace::EventKind::kTierSpan,
                                     static_cast<std::uint8_t>(req.attempt())});
#else
    (void)station;
    (void)req;
#endif
  }

  /// Appends a request-scoped point event (kDrop) iff a recorder is attached.
  void mark(trace::EventKind kind, std::size_t station, const Request& req) {
#ifndef MEMCA_TRACE_DISABLED
    if (trace_ == nullptr) return;
    trace_->record(trace::TraceEvent{sim_.now(), req.id, 0, 0.0, req.user,
                                     static_cast<std::int16_t>(station), kind,
                                     static_cast<std::uint8_t>(req.attempt())});
#else
    (void)kind;
    (void)station;
    (void)req;
#endif
  }

  Simulator& sim_;
  trace::TraceRecorder* trace_ = nullptr;
  std::vector<Station> stations_;

 public:
  /// Checkpoint of the tandem chain: pool + counters + every station's
  /// worker bank, waiting room and residence histogram. Station count must
  /// match at restore().
  struct Snapshot {
    struct StationState {
      WorkStation::Snapshot workers;
      RingQueue<std::uint32_t>::Snapshot queue;
      LatencyHistogram residence_time;
    };
    CountersSnapshot counters;
    std::vector<StationState> stations;
  };

  void capture(Snapshot& out) const {
    capture_counters(out.counters);
    out.stations.resize(stations_.size());
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      stations_[i].workers->capture(out.stations[i].workers);
      stations_[i].queue.capture(out.stations[i].queue);
      out.stations[i].residence_time = stations_[i].residence_time;
    }
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.stations.size() == stations_.size());
    restore_counters(snap.counters);
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      stations_[i].workers->restore(snap.stations[i].workers);
      stations_[i].queue.restore(snap.stations[i].queue);
      stations_[i].residence_time = snap.stations[i].residence_time;
    }
  }
};

}  // namespace memca::queueing
