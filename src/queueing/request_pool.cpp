#include "queueing/request_pool.h"

namespace memca::queueing {

RequestPool::~RequestPool() {
  // Every slot in [0, num_slots_) holds a constructed Request (released ones
  // are recycled in place, never destroyed), so destruction walks them all.
  for (std::uint32_t i = 0; i < num_slots_; ++i) {
    slot_ptr(i)->~Request();
  }
}

Request* RequestPool::acquire() {
  Request* req;
  if (!free_.empty()) {
    req = slot_ptr(free_.back());
    free_.pop_back();
    // Reset scalars to the defaults a fresh Request would have; clear (but
    // keep the capacity of) the per-tier vectors. pool_slot and the
    // generation survive recycling.
    req->id = 0;
    req->page_class = -1;
    req->user = -1;
    req->attempt = 0;
    req->first_sent = 0;
    req->sent = 0;
    req->demand_us.clear();
    req->trace.clear();
    req->pool_gen += 1;  // even (free) -> odd (live)
  } else {
    MEMCA_CHECK_MSG(num_slots_ != 0xffffffffu, "request pool exhausted");
    const std::uint32_t index = num_slots_++;
    if ((index & kChunkMask) == 0) {
      chunks_.push_back(std::make_unique_for_overwrite<unsigned char[]>(
          sizeof(Request) << kChunkShift));
    }
    unsigned char* raw =
        chunks_[index >> kChunkShift].get() + sizeof(Request) * (index & kChunkMask);
    req = ::new (static_cast<void*>(raw)) Request{};
    req->pool_slot = index;
    req->pool_gen = 1;  // generation 0, live
  }
  ++live_;
  return req;
}

void RequestPool::release(Request* req) {
  MEMCA_CHECK(req != nullptr);
  MEMCA_CHECK_MSG((req->pool_gen & 1u) != 0,
                  "release of a request that is not live (double release, or "
                  "a request from outside this pool)");
  MEMCA_DCHECK(req->pool_slot < num_slots_ && slot_ptr(req->pool_slot) == req);
  MEMCA_DCHECK(live_ > 0);
  req->pool_gen += 1;  // odd (live) -> even (free): stale handles now miss
  --live_;
  free_.push_back(req->pool_slot);
}

}  // namespace memca::queueing
