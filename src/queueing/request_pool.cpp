#include "queueing/request_pool.h"

namespace memca::queueing {

RequestPool::~RequestPool() {
  // Every slot in [0, constructed_) holds a constructed Request (released
  // ones are recycled in place, never destroyed; a checkpoint rollback only
  // shrinks num_slots_), so destruction walks them all.
  for (std::uint32_t i = 0; i < constructed_; ++i) {
    slot_ptr(i)->~Request();
  }
}

Request* RequestPool::acquire() {
  Request* req;
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    req = slot_ptr(index);
    free_.pop_back();
    // Reset scalars to the defaults a fresh Request would have; clear (but
    // keep the capacity of) the demand vector. pool_slot and the generation
    // survive recycling.
    req->id = 0;
    req->page_class = -1;
    req->user = -1;
    req->demand_us.clear();
    req->pool_gen += 1;  // even (free) -> odd (live)
    hot_.reset_hot(index);
  } else if (num_slots_ < constructed_) {
    // Regrowth after a checkpoint rollback: the slot still holds the object
    // from its previous life. Revive it exactly as a fresh construction
    // would look (generation restarts at 0, live) — only the retained vector
    // capacity differs, which is unobservable.
    const std::uint32_t index = num_slots_++;
    req = slot_ptr(index);
    req->id = 0;
    req->page_class = -1;
    req->user = -1;
    req->demand_us.clear();
    req->pool_slot = index;
    req->pool_gen = 1;
    req->hot = &hot_;
    hot_.ensure(num_slots_);
    hot_.reset_hot(index);
  } else {
    MEMCA_CHECK_MSG(num_slots_ != 0xffffffffu, "request pool exhausted");
    const std::uint32_t index = num_slots_++;
    if ((index >> kChunkShift) >= chunks_.size()) {
      chunks_.push_back(std::make_unique_for_overwrite<unsigned char[]>(
          sizeof(Request) << kChunkShift));
    }
    unsigned char* raw =
        chunks_[index >> kChunkShift].get() + sizeof(Request) * (index & kChunkMask);
    req = ::new (static_cast<void*>(raw)) Request{};
    req->pool_slot = index;
    req->pool_gen = 1;  // generation 0, live
    req->hot = &hot_;
    constructed_ = num_slots_;
    hot_.ensure(num_slots_);
    hot_.reset_hot(index);
  }
  ++live_;
  return req;
}

void RequestPool::capture(Snapshot& out) const {
  out.num_slots = num_slots_;
  out.live = live_;
  out.free_list.assign(free_.begin(), free_.end());
  out.slots.resize(num_slots_);
  for (std::uint32_t i = 0; i < num_slots_; ++i) {
    const Request* req = slot_ptr(i);
    Snapshot::SlotState& s = out.slots[i];
    s.gen = req->pool_gen;
    if ((req->pool_gen & 1u) != 0) {
      s.id = req->id;
      s.page_class = req->page_class;
      s.user = req->user;
      s.demand_us.assign(req->demand_us.begin(), req->demand_us.end());
    } else {
      // A free slot's body is never observed (acquire resets it); don't keep
      // a stale copy alive in the snapshot.
      s.demand_us.clear();
    }
  }
  hot_.capture(num_slots_, out.hot);
}

void RequestPool::restore(const Snapshot& snap) {
  MEMCA_CHECK_MSG(snap.num_slots <= constructed_,
                  "a Snapshot only restores into the pool it captured");
  num_slots_ = snap.num_slots;
  live_ = snap.live;
  free_.assign(snap.free_list.begin(), snap.free_list.end());
  for (std::uint32_t i = 0; i < snap.num_slots; ++i) {
    Request* req = slot_ptr(i);
    const Snapshot::SlotState& s = snap.slots[i];
    req->pool_gen = s.gen;  // pool_slot is invariant per slot
    if ((s.gen & 1u) != 0) {
      req->id = s.id;
      req->page_class = s.page_class;
      req->user = s.user;
      req->demand_us.assign(s.demand_us.begin(), s.demand_us.end());
    }
  }
  hot_.restore(snap.hot);
}

void RequestPool::release(Request* req) {
  MEMCA_CHECK(req != nullptr);
  MEMCA_CHECK_MSG((req->pool_gen & 1u) != 0,
                  "release of a request that is not live (double release, or "
                  "a request from outside this pool)");
  MEMCA_DCHECK(req->pool_slot < num_slots_ && slot_ptr(req->pool_slot) == req);
  MEMCA_DCHECK(live_ > 0);
  req->pool_gen += 1;  // odd (live) -> even (free): stale handles now miss
  --live_;
  free_.push_back(req->pool_slot);
}

}  // namespace memca::queueing
