#include "queueing/tandem.h"

#include "common/check.h"

namespace memca::queueing {

TandemQueueSystem::TandemQueueSystem(Simulator& sim, std::vector<StationConfig> stations)
    : sim_(sim) {
  MEMCA_CHECK_MSG(!stations.empty(), "a tandem system needs at least one station");
  pool_.set_depth(stations.size());
  stations_.reserve(stations.size());
  for (std::size_t i = 0; i < stations.size(); ++i) {
    Station st;
    st.config = stations[i];
    MEMCA_CHECK_MSG(st.config.workers >= 1, "a station needs at least one worker");
    st.workers = std::make_unique<WorkStation>(
        sim_, st.config.workers, [this, i](std::uint32_t s) { on_service_done(i, s); });
    // Pre-size bounded waiting rooms to their capacity; unbounded ones grow
    // amortized from a small warm buffer.
    if (st.config.queue_capacity != StationConfig::kUnbounded) {
      st.queue.reserve(static_cast<std::size_t>(st.config.queue_capacity));
    }
    stations_.push_back(std::move(st));
  }
}

bool TandemQueueSystem::submit(Request* req) {
  MEMCA_CHECK(req != nullptr);
  MEMCA_CHECK_MSG(req->demand_us.size() == stations_.size(),
                  "request needs one demand entry per station");
  pool_.hot().stage_demands(req->pool_slot, req->demand_us);
  ++submitted_;
  const Station& st = stations_.front();
  if (st.config.queue_capacity != StationConfig::kUnbounded &&
      queue_length(0) >= st.config.queue_capacity && !st.workers->has_free_worker()) {
    drop(0, req);
    return false;
  }
  ++in_flight_;
  offer(0, req->pool_slot);
  return true;
}

void TandemQueueSystem::set_speed_multiplier(std::size_t station, double multiplier) {
  MEMCA_CHECK(station < stations_.size());
  stations_[station].workers->set_speed(multiplier);
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, multiplier, -1,
                                        static_cast<std::int16_t>(station),
                                        trace::EventKind::kCapacity, 0});
}

int TandemQueueSystem::queue_length(std::size_t station) const {
  MEMCA_CHECK(station < stations_.size());
  return static_cast<int>(stations_[station].queue.size());
}

int TandemQueueSystem::in_service(std::size_t station) const {
  MEMCA_CHECK(station < stations_.size());
  return stations_[station].workers->busy();
}

int TandemQueueSystem::resident(std::size_t station) const {
  return queue_length(station) + in_service(station);
}

const LatencyHistogram& TandemQueueSystem::residence_time(std::size_t station) const {
  MEMCA_CHECK(station < stations_.size());
  return stations_[station].residence_time;
}

const std::string& TandemQueueSystem::station_name(std::size_t station) const {
  MEMCA_CHECK(station < stations_.size());
  return stations_[station].config.name;
}

void TandemQueueSystem::offer(std::size_t index, std::uint32_t slot) {
  Station& st = stations_[index];
  RequestHotArena& hot = pool_.hot();
  hot.tier(slot) = static_cast<std::int16_t>(index);
  hot.stamp(slot, index).enter = sim_.now();
  hot.state(slot) = RequestState::kWaiting;
  st.queue.push_back(slot);
  pump(index);
}

void TandemQueueSystem::pump(std::size_t index) {
  Station& st = stations_[index];
  RequestHotArena& hot = pool_.hot();
  while (st.workers->has_free_worker() && !st.queue.empty()) {
    const std::uint32_t slot = st.queue.front();
    st.queue.pop_front();
    TierTrace& tr = hot.stamp(slot, index);
    tr.service_start = sim_.now();
    hot.state(slot) = RequestState::kInService;
    st.workers->start(slot, tr.demand);
  }
}

void TandemQueueSystem::on_service_done(std::size_t index, std::uint32_t slot) {
  Station& st = stations_[index];
  TierTrace& tr = pool_.hot().stamp(slot, index);
  tr.leave = sim_.now();
  mark_span(index, *pool_.get(slot));
  st.residence_time.record(sim_.now() - tr.enter);
  if (index + 1 == stations_.size()) {
    finish(slot);
  } else {
    const Station& next = stations_[index + 1];
    if (next.config.queue_capacity != StationConfig::kUnbounded &&
        queue_length(index + 1) >= next.config.queue_capacity &&
        !next.workers->has_free_worker()) {
      drop(index + 1, pool_.get(slot));
    } else {
      offer(index + 1, slot);
    }
  }
  pump(index);
}

void TandemQueueSystem::finish(std::uint32_t slot) {
  Request* req = pool_.get(slot);
  ++completed_;
  MEMCA_DCHECK(in_flight_ > 0);
  --in_flight_;
  if (on_complete_) on_complete_(*req);
  pool_.release(req);
}

void TandemQueueSystem::drop(std::size_t index, Request* req) {
  ++dropped_;
  mark(trace::EventKind::kDrop, index, *req);
  // Front rejects (index 0) happen before the request ever counted as in
  // flight; interior overflows surrender an admitted request.
  if (index > 0) {
    MEMCA_DCHECK(in_flight_ > 0);
    --in_flight_;
  }
  if (on_drop_) on_drop_(*req);
  pool_.release(req);
}

}  // namespace memca::queueing
