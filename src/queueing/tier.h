// One tier of an n-tier system with RPC thread-holding semantics.
//
// A tier has a hard thread limit Q (the paper's queue size: server threads /
// connection-pool slots) and a bank of workers (vCPUs). A request occupies
// one thread from admission until its *reply* leaves the tier — including
// the whole time it is queued or served in any downstream tier. That is the
// synchronous-RPC coupling the paper identifies as the amplification
// mechanism: queued requests in MySQL pin threads in Tomcat and Apache, so
// a millibottleneck in the back end exhausts every upstream thread pool
// (cross-tier queue overflow, Fig. 6b).
//
// Within a tier, a request's lifecycle is:
//   waiting  -> in service -> [blocked on downstream ->] awaiting reply -> departs
// The "blocked" state holds requests whose local service finished but whose
// downstream tier has no free thread; the downstream tier pulls the oldest
// blocked request the moment one of its threads frees.
//
// Hot-path layout: the tier moves requests as pool-slot indices. Queues hold
// packed u32 slots, the per-event fields (timestamps, lifecycle state, tier
// index) are written straight into the RequestPool's SoA arena lanes, and
// the Request body is only dereferenced once per local service (demand read)
// and once per reply delivery. Monotone throughput counters are accumulated
// in per-tier pending cells and flushed to the real counters and the metrics
// registry once per completion batch (see Simulator::batch_continues), not
// once per event.
#pragma once

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/inline_callback.h"
#include "common/ring_queue.h"
#include "flightrec/quantile_sketch.h"
#include "metrics/registry.h"
#include "queueing/request_pool.h"
#include "queueing/workstation.h"
#include "trace/recorder.h"

namespace memca::queueing {

/// Pre-resolved per-tier metric handles (see metrics::Registry). Detached
/// by default, so an uninstrumented tier pays one predictable branch per
/// event and nothing else.
struct TierMetrics {
  metrics::Counter offered;
  metrics::Counter admitted;
  metrics::Counter rejected;
  metrics::Counter completed;
};

struct TierConfig {
  std::string name;
  /// Thread limit Q_i: max requests resident in this tier at once.
  int threads = 100;
  /// Parallel service slots (vCPUs).
  int workers = 2;
  /// Service-demand quantum in µs (0 = exact, the byte-stable default).
  /// When set, staged demands round onto this grid, the station groups
  /// same-instant completions under one simulator event, and the tier drains
  /// whole completion batches end to end (batched downstream forward, one
  /// counter flush per batch). Must be uniform across a chain — the staging
  /// arena is shared. A deliberate, documented event-stream change.
  std::uint32_t service_quantum_us = 0;
};

class TierServer {
 public:
  TierServer(Simulator& sim, RequestPool& pool, TierConfig config,
             std::size_t tier_index);
  /// Tiers are owned polymorphically by NTierSystem (see the TierFactory
  /// hook) so variants like the OLTP lock-table tier can slot into the
  /// chain.
  virtual ~TierServer() = default;
  TierServer(const TierServer&) = delete;
  TierServer& operator=(const TierServer&) = delete;

  /// Wires this tier's downstream neighbour (and its upstream back-pointer).
  void set_downstream(TierServer* downstream);
  /// Front tier only: where completed replies are delivered.
  void set_reply_sink(InlineFunction<void(Request*)> sink);
  /// Front tier, quantized mode: replies departing during one completion
  /// batch are buffered and delivered as one span through this sink (the
  /// batch-end flush empties the buffer before the event returns). Without
  /// it, quantized mode falls back to the per-request reply sink.
  void set_batch_reply_sink(InlineFunction<void(Request* const*, std::size_t)> sink);

  /// External entry (front tier): admits or rejects. A rejection is a
  /// dropped request — the client's TCP layer will retransmit.
  bool try_submit(Request* req);

  /// Scales this tier's service speed (the attack coupling sets this to the
  /// degradation index D during ON bursts; 1.0 when OFF).
  void set_speed_multiplier(double multiplier);
  double speed_multiplier() const { return station_.speed(); }

  /// Elastic scale-out: adds `workers` service slots (and grows the thread
  /// limit by `extra_threads`, since a scaled-out replica also brings its
  /// own connection capacity). Waiting requests start immediately.
  void add_capacity(int workers, int extra_threads = 0);

  /// Elastic scale-in: retires `workers` slots (busy ones finish first) and
  /// shrinks the thread limit by `fewer_threads` (never below the larger of
  /// one and the current worker count).
  void remove_capacity(int workers, int fewer_threads = 0);

  // -- introspection -------------------------------------------------------
  const TierConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  std::size_t index() const { return index_; }
  int threads() const { return config_.threads; }
  int workers() const { return station_.workers(); }
  /// Requests currently occupying a thread in this tier.
  int resident() const { return resident_; }
  /// Waiting for a local worker.
  int waiting() const { return static_cast<int>(wait_queue_.size()); }
  /// Being served locally right now.
  int in_service() const { return station_.busy(); }
  /// Local service done, waiting for a downstream thread.
  int blocked_on_downstream() const { return static_cast<int>(blocked_.size()); }
  /// Resident in some downstream tier.
  int awaiting_reply() const { return awaiting_reply_; }
  bool full() const { return resident_ >= config_.threads; }

  // Throughput counters fold in the not-yet-flushed batch pendings, so a
  // read is exact at any instant — mid-batch included.
  std::int64_t offered() const { return offered_ + pending_offered_; }
  std::int64_t admitted() const { return admitted_ + pending_admitted_; }
  std::int64_t rejected() const { return rejected_ + pending_rejected_; }
  std::int64_t completed() const { return completed_ + pending_completed_; }

  /// Per-tier residence-time (enter→leave) distribution.
  const LatencyHistogram& residence_time() const { return residence_time_; }

  /// Busy-worker time integral (worker-microseconds), for CPU utilization
  /// sampling. See WorkStation::busy_worker_time_us.
  double busy_worker_time_us() const { return station_.busy_worker_time_us(); }

  /// Attaches a span-event recorder (nullptr detaches; not owned).
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  /// Attaches pre-resolved metric handles; a default TierMetrics detaches.
  void set_metrics(TierMetrics metrics) { metrics_ = metrics; }

  /// Attaches a streaming residence-time sketch (flight recorder telemetry;
  /// nullptr detaches, not owned). The sketch sees every departure — the
  /// online, bounded-memory counterpart of residence_time(). Its state is
  /// the owner's to checkpoint (the flight recorder snapshots it).
  void set_residence_sketch(flightrec::QuantileSketch* sketch) { residence_sketch_ = sketch; }

 protected:
  // -- variant hooks --------------------------------------------------------
  // A derived tier customises what happens between thread admission and
  // local service (begin_local_work: the base queues for a worker at once;
  // the OLTP tier first acquires record locks, possibly parking the request
  // in a lock waiter queue) and what happens the instant local service ends
  // (after_local_service: the base does nothing; the OLTP tier releases the
  // transaction's locks and wakes granted waiters). Both run inside the
  // tier's normal event flow, so overriding them never changes the FIFO
  // tier's event stream.

  /// Called once per admission, after the thread is taken and the enter
  /// stamp written. Must eventually lead to queue_for_worker(slot).
  virtual void begin_local_work(std::uint32_t slot) { queue_for_worker(slot); }

  /// Called when `slot`'s local service completes, after its span is
  /// recorded and before the request departs or forwards downstream. The
  /// freeing worker is already available.
  virtual void after_local_service(std::uint32_t /*slot*/) {}

  /// Hands the request to the worker bank: starts service immediately when
  /// a worker is free and nothing queued ahead, else joins the FIFO wait
  /// queue. The tail of the admission path, also the resume point for a
  /// derived tier once its pre-service work (lock acquisition) is done.
  void queue_for_worker(std::uint32_t slot);

  Simulator& sim_;
  RequestPool& pool_;
  /// Cached &pool_.hot(): the SoA lanes every per-event write lands in.
  RequestHotArena* hot_;
  TierConfig config_;
  std::size_t index_;
  WorkStation station_;
  trace::TraceRecorder* trace_ = nullptr;

 private:
  friend class NTierSystem;

  void admit(std::uint32_t slot);
  void pump();
  void on_service_done(std::uint32_t slot);
  void forward_downstream(std::uint32_t slot);
  /// Called by the downstream tier when our request's reply returns. With
  /// settle=false (a batch drain) the per-slot counter flush is skipped —
  /// the drain's end-of-batch flush_chain() settles everything at once.
  void on_reply_from_downstream(std::uint32_t slot, bool settle = true);
  /// Request departs this tier; propagates the reply upstream. settle as
  /// above; unsettled front-tier departures buffer their reply for the
  /// batch reply sink instead of delivering one by one.
  void depart(std::uint32_t slot, bool settle = true);
  /// Called by `this` after freeing a thread: pulls the oldest request
  /// blocked in the upstream tier, if any.
  void pull_blocked_from_upstream();
  /// Upstream-facing admission used by forward/pull paths.
  bool accept_from_upstream(std::uint32_t slot);

  // -- quantized batch drain (station in grouped-completion mode) ----------
  /// Station callback: one whole same-instant completion group. Spans and
  /// variant hooks run per member, then the batch forwards downstream in one
  /// call (or departs member by member), the freed workers are re-pumped
  /// once, and the whole chain's counters flush once.
  void on_service_batch_done(const std::uint32_t* slots, std::size_t n);
  /// Batched admission from the upstream tier: offers all `n` packed slot
  /// indices, admits the prefix that fits (admission cannot free threads, so
  /// acceptance is prefix-closed), counts the rest rejected, and returns the
  /// number admitted. No flush — the caller's batch-end flush settles it.
  std::size_t accept_batch_from_upstream(const std::uint32_t* slots, std::size_t n);
  /// Batch-end settlement: flushes pending counters (and the front tier's
  /// buffered replies) across the whole chain, front to back.
  void flush_chain();
  /// Delivers the front tier's buffered reply batch, if any.
  void flush_replies();

  /// Settles the batch-pending counters into the real counters and the
  /// metrics registry: one update per batch instead of one per completion.
  void flush_pending() {
    if (pending_offered_ != 0) {
      offered_ += pending_offered_;
      metrics_.offered.inc(pending_offered_);
      pending_offered_ = 0;
    }
    if (pending_admitted_ != 0) {
      admitted_ += pending_admitted_;
      metrics_.admitted.inc(pending_admitted_);
      pending_admitted_ = 0;
    }
    if (pending_rejected_ != 0) {
      rejected_ += pending_rejected_;
      metrics_.rejected.inc(pending_rejected_);
      pending_rejected_ = 0;
    }
    if (pending_completed_ != 0) {
      completed_ += pending_completed_;
      metrics_.completed.inc(pending_completed_);
      pending_completed_ = 0;
    }
  }
  /// Every counter-mutating entry point ends with this: while more members
  /// of the current completion batch are about to fire, the flush waits;
  /// the batch's last member (and any unbatched event) settles immediately,
  /// so pendings are always zero between events.
  void maybe_flush() {
    if (!sim_.batch_continues()) flush_pending();
  }

  /// Appends this tier's consolidated kTierSpan event (queue enter +
  /// service start + service end in one record) iff a recorder is attached.
  /// Called at local-service end, when all three times are known.
  void mark_span(std::uint32_t slot) {
#ifndef MEMCA_TRACE_DISABLED
    if (trace_ == nullptr) return;
    const Request& req = *pool_.get(slot);
    const TierTrace& span = hot_->stamp(slot, index_);
    trace_->record(trace::TraceEvent{sim_.now(), req.id, span.enter,
                                     static_cast<double>(span.service_start), req.user,
                                     static_cast<std::int16_t>(index_),
                                     trace::EventKind::kTierSpan,
                                     static_cast<std::uint8_t>(req.attempt())});
#else
    (void)slot;
#endif
  }

  TierServer* downstream_ = nullptr;
  TierServer* upstream_ = nullptr;
  InlineFunction<void(Request*)> reply_sink_;
  InlineFunction<void(Request* const*, std::size_t)> batch_reply_sink_;
  /// True iff the station runs grouped completions (service_quantum_us > 0).
  bool batched_ = false;
  /// Front-tier reply staging during a batch drain; always empty between
  /// events. Reserved to the thread limit, so buffering never allocates.
  std::vector<Request*> reply_buf_;

  /// Occupancy of both queues is bounded by the thread limit Q_i, so they
  /// are pre-sized to it at construction and never allocate while serving.
  /// Entries are pool-slot indices: a queue sweep walks packed u32s.
  RingQueue<std::uint32_t> wait_queue_;
  RingQueue<std::uint32_t> blocked_;
  int awaiting_reply_ = 0;
  int resident_ = 0;

  TierMetrics metrics_;
  flightrec::QuantileSketch* residence_sketch_ = nullptr;

  std::int64_t offered_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t completed_ = 0;
  /// Batch-deferred deltas (see flush_pending / maybe_flush).
  std::int64_t pending_offered_ = 0;
  std::int64_t pending_admitted_ = 0;
  std::int64_t pending_rejected_ = 0;
  std::int64_t pending_completed_ = 0;
  LatencyHistogram residence_time_;

 public:
  /// Checkpoint of this tier's request-visible state. Queue contents are
  /// pool-slot indices (slots never relocate, so they stay valid across a
  /// rollback); the thread limit round-trips because add/remove_capacity
  /// mutates it. Topology (downstream/upstream wiring, trace/metrics
  /// attachment) is construction-time state and not captured. Batch
  /// pendings are checked zero — capture never runs mid-batch.
  struct Snapshot {
    int threads = 0;
    WorkStation::Snapshot station;
    RingQueue<std::uint32_t>::Snapshot wait_queue;
    RingQueue<std::uint32_t>::Snapshot blocked;
    int awaiting_reply = 0;
    int resident = 0;
    std::int64_t offered = 0;
    std::int64_t admitted = 0;
    std::int64_t rejected = 0;
    std::int64_t completed = 0;
    LatencyHistogram residence_time;
  };

  void capture(Snapshot& out) const {
    MEMCA_CHECK_MSG(pending_offered_ == 0 && pending_admitted_ == 0 &&
                        pending_rejected_ == 0 && pending_completed_ == 0,
                    "batch pendings must be settled between events");
    MEMCA_CHECK_MSG(reply_buf_.empty(), "reply batch must be flushed between events");
    out.threads = config_.threads;
    station_.capture(out.station);
    wait_queue_.capture(out.wait_queue);
    blocked_.capture(out.blocked);
    out.awaiting_reply = awaiting_reply_;
    out.resident = resident_;
    out.offered = offered_;
    out.admitted = admitted_;
    out.rejected = rejected_;
    out.completed = completed_;
    out.residence_time = residence_time_;
  }

  void restore(const Snapshot& snap) {
    config_.threads = snap.threads;
    station_.restore(snap.station);
    wait_queue_.restore(snap.wait_queue);
    blocked_.restore(snap.blocked);
    awaiting_reply_ = snap.awaiting_reply;
    resident_ = snap.resident;
    offered_ = snap.offered;
    admitted_ = snap.admitted;
    rejected_ = snap.rejected;
    completed_ = snap.completed;
    pending_offered_ = 0;
    pending_admitted_ = 0;
    pending_rejected_ = 0;
    pending_completed_ = 0;
    residence_time_ = snap.residence_time;
  }
};

}  // namespace memca::queueing
