#include "queueing/tier.h"

#include <algorithm>

#include "common/check.h"

namespace memca::queueing {

TierServer::TierServer(Simulator& sim, TierConfig config, std::size_t tier_index)
    : sim_(sim),
      config_(std::move(config)),
      index_(tier_index),
      station_(sim, config_.workers, [this](Request* r) { on_service_done(r); }) {
  MEMCA_CHECK_MSG(config_.threads >= 1, "a tier needs at least one thread");
  MEMCA_CHECK_MSG(config_.workers >= 1, "a tier needs at least one worker");
  // At most `threads` requests are resident, so neither queue can outgrow
  // the thread limit; pre-sizing makes serving allocation-free.
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
}

void TierServer::set_downstream(TierServer* downstream) {
  MEMCA_CHECK_MSG(downstream_ == nullptr, "downstream already wired");
  MEMCA_CHECK(downstream != nullptr && downstream != this);
  downstream_ = downstream;
  MEMCA_CHECK_MSG(downstream->upstream_ == nullptr, "downstream already has an upstream");
  downstream->upstream_ = this;
}

void TierServer::set_speed_multiplier(double multiplier) {
  station_.set_speed(multiplier);
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, multiplier, -1,
                                        static_cast<std::int16_t>(index_),
                                        trace::EventKind::kCapacity, 0});
}

void TierServer::add_capacity(int workers, int extra_threads) {
  MEMCA_CHECK_MSG(extra_threads >= 0, "cannot shrink the thread limit");
  station_.add_workers(workers);
  config_.threads += extra_threads;
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
  pump();
  // New threads may also unblock requests parked in the upstream tier.
  pull_blocked_from_upstream();
}

void TierServer::remove_capacity(int workers, int fewer_threads) {
  MEMCA_CHECK_MSG(fewer_threads >= 0, "thread reduction must be non-negative");
  station_.remove_workers(workers);
  config_.threads = std::max({1, station_.workers(), config_.threads - fewer_threads});
}

void TierServer::set_reply_sink(InlineFunction<void(Request*)> sink) {
  MEMCA_CHECK(static_cast<bool>(sink));
  reply_sink_ = std::move(sink);
}

bool TierServer::try_submit(Request* req) {
  MEMCA_CHECK(req != nullptr);
  ++offered_;
  metrics_.offered.inc();
  if (full()) {
    ++rejected_;
    metrics_.rejected.inc();
    return false;
  }
  admit(req);
  return true;
}

bool TierServer::accept_from_upstream(Request* req) {
  ++offered_;
  metrics_.offered.inc();
  if (full()) {
    ++rejected_;
    metrics_.rejected.inc();
    return false;
  }
  admit(req);
  return true;
}

void TierServer::admit(Request* req) {
  ++resident_;
  ++admitted_;
  metrics_.admitted.inc();
  MEMCA_CHECK_MSG(index_ < req->trace.size(), "request trace not sized for this system");
  req->trace[index_].enter = sim_.now();
  wait_queue_.push_back(req);
  pump();
}

void TierServer::pump() {
  while (station_.has_free_worker() && !wait_queue_.empty()) {
    Request* req = wait_queue_.front();
    wait_queue_.pop_front();
    MEMCA_CHECK_MSG(index_ < req->demand_us.size(), "request demand not sized for this system");
    req->trace[index_].service_start = sim_.now();
    station_.start(req, req->demand_us[index_]);
  }
}

void TierServer::on_service_done(Request* req) {
  mark_span(*req);
  if (downstream_ == nullptr) {
    depart(req);
  } else {
    forward_downstream(req);
  }
  // The worker that finished is free; take the next waiting request.
  pump();
}

void TierServer::forward_downstream(Request* req) {
  if (downstream_->accept_from_upstream(req)) {
    ++awaiting_reply_;
  } else {
    // Downstream thread pool exhausted: hold our thread and wait to be
    // pulled. This is the cross-tier overflow propagation step.
    blocked_.push_back(req);
  }
}

void TierServer::on_reply_from_downstream(Request* req) {
  MEMCA_CHECK(awaiting_reply_ > 0);
  --awaiting_reply_;
  depart(req);
}

void TierServer::depart(Request* req) {
  req->trace[index_].leave = sim_.now();
  MEMCA_CHECK(resident_ > 0);
  --resident_;
  ++completed_;
  metrics_.completed.inc();
  residence_time_.record(req->tier_time(index_));

  // Deliver the reply upstream first (it departs every upstream tier at the
  // same instant — the response path is negligible), then backfill the
  // thread we just freed from the upstream blocked queue.
  if (upstream_ != nullptr) {
    upstream_->on_reply_from_downstream(req);
  } else {
    MEMCA_CHECK_MSG(static_cast<bool>(reply_sink_), "front tier needs a reply sink");
    reply_sink_(req);
  }
  pull_blocked_from_upstream();
}

void TierServer::pull_blocked_from_upstream() {
  if (upstream_ == nullptr) return;
  while (!full() && !upstream_->blocked_.empty()) {
    Request* req = upstream_->blocked_.front();
    upstream_->blocked_.pop_front();
    ++upstream_->awaiting_reply_;
    ++offered_;
    metrics_.offered.inc();
    admit(req);
  }
}

}  // namespace memca::queueing
