#include "queueing/tier.h"

#include <algorithm>

#include "common/check.h"

namespace memca::queueing {

TierServer::TierServer(Simulator& sim, RequestPool& pool, TierConfig config,
                       std::size_t tier_index)
    : sim_(sim),
      pool_(pool),
      hot_(&pool.hot()),
      config_(std::move(config)),
      index_(tier_index),
      station_(sim, config_.workers, [this](std::uint32_t s) { on_service_done(s); }) {
  MEMCA_CHECK_MSG(config_.threads >= 1, "a tier needs at least one thread");
  MEMCA_CHECK_MSG(config_.workers >= 1, "a tier needs at least one worker");
  // At most `threads` requests are resident, so neither queue can outgrow
  // the thread limit; pre-sizing makes serving allocation-free.
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
}

void TierServer::set_downstream(TierServer* downstream) {
  MEMCA_CHECK_MSG(downstream_ == nullptr, "downstream already wired");
  MEMCA_CHECK(downstream != nullptr && downstream != this);
  downstream_ = downstream;
  MEMCA_CHECK_MSG(downstream->upstream_ == nullptr, "downstream already has an upstream");
  downstream->upstream_ = this;
}

void TierServer::set_speed_multiplier(double multiplier) {
  station_.set_speed(multiplier);
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, multiplier, -1,
                                        static_cast<std::int16_t>(index_),
                                        trace::EventKind::kCapacity, 0});
}

void TierServer::add_capacity(int workers, int extra_threads) {
  MEMCA_CHECK_MSG(extra_threads >= 0, "cannot shrink the thread limit");
  station_.add_workers(workers);
  config_.threads += extra_threads;
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
  pump();
  // New threads may also unblock requests parked in the upstream tier.
  pull_blocked_from_upstream();
  maybe_flush();
}

void TierServer::remove_capacity(int workers, int fewer_threads) {
  MEMCA_CHECK_MSG(fewer_threads >= 0, "thread reduction must be non-negative");
  station_.remove_workers(workers);
  config_.threads = std::max({1, station_.workers(), config_.threads - fewer_threads});
}

void TierServer::set_reply_sink(InlineFunction<void(Request*)> sink) {
  MEMCA_CHECK(static_cast<bool>(sink));
  reply_sink_ = std::move(sink);
}

bool TierServer::try_submit(Request* req) {
  MEMCA_CHECK(req != nullptr);
  // External entry: stage the per-tier demands into the stamp lane so the
  // admit/pump fast paths never have to chase the Request body.
  hot_->stage_demands(req->pool_slot, req->demand_us);
  ++pending_offered_;
  if (full()) {
    ++pending_rejected_;
    maybe_flush();
    return false;
  }
  admit(req->pool_slot);
  maybe_flush();
  return true;
}

bool TierServer::accept_from_upstream(std::uint32_t slot) {
  ++pending_offered_;
  if (full()) {
    ++pending_rejected_;
    maybe_flush();
    return false;
  }
  admit(slot);
  maybe_flush();
  return true;
}

void TierServer::admit(std::uint32_t slot) {
  ++resident_;
  ++pending_admitted_;
  hot_->tier(slot) = static_cast<std::int16_t>(index_);
  hot_->stamp(slot, index_).enter = sim_.now();
  begin_local_work(slot);
}

void TierServer::queue_for_worker(std::uint32_t slot) {
  TierTrace& tr = hot_->stamp(slot, index_);
  // Fast path: an admit that can start does so directly — no queue
  // round-trip, no pump call. Between events a free worker implies an empty
  // wait queue, but mid-completion (depart → pull_blocked_from_upstream,
  // before on_service_done's pump) both can hold at once, and FIFO demands
  // the queued request win the freed worker — hence the empty() check.
  if (station_.has_free_worker() && wait_queue_.empty()) {
    tr.service_start = sim_.now();
    hot_->state(slot) = RequestState::kInService;
    station_.start(slot, tr.demand);
  } else {
    hot_->state(slot) = RequestState::kWaiting;
    wait_queue_.push_back(slot);
  }
}

void TierServer::pump() {
  while (station_.has_free_worker() && !wait_queue_.empty()) {
    const std::uint32_t slot = wait_queue_.front();
    wait_queue_.pop_front();
    TierTrace& tr = hot_->stamp(slot, index_);
    tr.service_start = sim_.now();
    hot_->state(slot) = RequestState::kInService;
    station_.start(slot, tr.demand);
  }
}

void TierServer::on_service_done(std::uint32_t slot) {
  mark_span(slot);
  // Variant hook: an OLTP tier releases this transaction's record locks and
  // resumes granted waiters before the slot departs (two-phase release).
  after_local_service(slot);
  if (downstream_ == nullptr) {
    depart(slot);
  } else {
    forward_downstream(slot);
  }
  // The worker that finished is free; take the next waiting request.
  if (!wait_queue_.empty()) pump();
}

void TierServer::forward_downstream(std::uint32_t slot) {
  if (downstream_->accept_from_upstream(slot)) {
    ++awaiting_reply_;
  } else {
    // Downstream thread pool exhausted: hold our thread and wait to be
    // pulled. This is the cross-tier overflow propagation step.
    hot_->state(slot) = RequestState::kBlockedDownstream;
    blocked_.push_back(slot);
  }
}

void TierServer::on_reply_from_downstream(std::uint32_t slot) {
  MEMCA_CHECK(awaiting_reply_ > 0);
  --awaiting_reply_;
  depart(slot);
}

void TierServer::depart(std::uint32_t slot) {
  TierTrace& tr = hot_->stamp(slot, index_);
  tr.leave = sim_.now();
  MEMCA_CHECK(resident_ > 0);
  --resident_;
  ++pending_completed_;
  residence_time_.record(sim_.now() - tr.enter);
  if (residence_sketch_ != nullptr) {
    residence_sketch_->record(static_cast<double>(sim_.now() - tr.enter));
  }

  // Deliver the reply upstream first (it departs every upstream tier at the
  // same instant — the response path is negligible), then backfill the
  // thread we just freed from the upstream blocked queue.
  if (upstream_ != nullptr) {
    upstream_->on_reply_from_downstream(slot);
  } else {
    MEMCA_CHECK_MSG(static_cast<bool>(reply_sink_), "front tier needs a reply sink");
    reply_sink_(pool_.get(slot));
  }
  pull_blocked_from_upstream();
  maybe_flush();
}

void TierServer::pull_blocked_from_upstream() {
  if (upstream_ == nullptr) return;
  while (!full() && !upstream_->blocked_.empty()) {
    const std::uint32_t slot = upstream_->blocked_.front();
    upstream_->blocked_.pop_front();
    ++upstream_->awaiting_reply_;
    ++pending_offered_;
    admit(slot);
  }
}

}  // namespace memca::queueing
