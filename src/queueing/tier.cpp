#include "queueing/tier.h"

#include <algorithm>

#include "common/check.h"

namespace memca::queueing {

TierServer::TierServer(Simulator& sim, RequestPool& pool, TierConfig config,
                       std::size_t tier_index)
    : sim_(sim),
      pool_(pool),
      hot_(&pool.hot()),
      config_(std::move(config)),
      index_(tier_index),
      station_(sim, config_.workers, [this](std::uint32_t s) { on_service_done(s); }) {
  MEMCA_CHECK_MSG(config_.threads >= 1, "a tier needs at least one thread");
  MEMCA_CHECK_MSG(config_.workers >= 1, "a tier needs at least one worker");
  // At most `threads` requests are resident, so neither queue can outgrow
  // the thread limit; pre-sizing makes serving allocation-free.
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
  if (config_.service_quantum_us > 0) {
    batched_ = true;
    // A batch drain's departures are bounded by residency; pre-size the
    // reply staging so the front tier buffers without allocating.
    reply_buf_.reserve(static_cast<std::size_t>(config_.threads));
    station_.enable_batch_completions(
        static_cast<SimTime>(config_.service_quantum_us),
        [this](const std::uint32_t* s, std::size_t n) { on_service_batch_done(s, n); });
  }
}

void TierServer::set_downstream(TierServer* downstream) {
  MEMCA_CHECK_MSG(downstream_ == nullptr, "downstream already wired");
  MEMCA_CHECK(downstream != nullptr && downstream != this);
  downstream_ = downstream;
  MEMCA_CHECK_MSG(downstream->upstream_ == nullptr, "downstream already has an upstream");
  downstream->upstream_ = this;
}

void TierServer::set_speed_multiplier(double multiplier) {
  station_.set_speed(multiplier);
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, multiplier, -1,
                                        static_cast<std::int16_t>(index_),
                                        trace::EventKind::kCapacity, 0});
}

void TierServer::add_capacity(int workers, int extra_threads) {
  MEMCA_CHECK_MSG(extra_threads >= 0, "cannot shrink the thread limit");
  station_.add_workers(workers);
  config_.threads += extra_threads;
  wait_queue_.reserve(static_cast<std::size_t>(config_.threads));
  blocked_.reserve(static_cast<std::size_t>(config_.threads));
  pump();
  // New threads may also unblock requests parked in the upstream tier.
  pull_blocked_from_upstream();
  maybe_flush();
}

void TierServer::remove_capacity(int workers, int fewer_threads) {
  MEMCA_CHECK_MSG(fewer_threads >= 0, "thread reduction must be non-negative");
  station_.remove_workers(workers);
  config_.threads = std::max({1, station_.workers(), config_.threads - fewer_threads});
}

void TierServer::set_reply_sink(InlineFunction<void(Request*)> sink) {
  MEMCA_CHECK(static_cast<bool>(sink));
  reply_sink_ = std::move(sink);
}

void TierServer::set_batch_reply_sink(InlineFunction<void(Request* const*, std::size_t)> sink) {
  MEMCA_CHECK(static_cast<bool>(sink));
  MEMCA_CHECK_MSG(batched_, "a batch reply sink needs a quantized tier");
  batch_reply_sink_ = std::move(sink);
}

bool TierServer::try_submit(Request* req) {
  MEMCA_CHECK(req != nullptr);
  ++pending_offered_;
  if (full()) {
    ++pending_rejected_;
    maybe_flush();
    return false;
  }
  // Stage the per-tier demands into the stamp lane (so the admit/pump fast
  // paths never chase the Request body) only once the request is in: a
  // rejected attempt's stamps are never read, and during an overload storm
  // rejections outnumber admissions a thousandfold.
  hot_->stage_demands(req->pool_slot, req->demand_us);
  admit(req->pool_slot);
  maybe_flush();
  return true;
}

bool TierServer::accept_from_upstream(std::uint32_t slot) {
  ++pending_offered_;
  if (full()) {
    ++pending_rejected_;
    maybe_flush();
    return false;
  }
  admit(slot);
  maybe_flush();
  return true;
}

void TierServer::admit(std::uint32_t slot) {
  ++resident_;
  ++pending_admitted_;
  hot_->tier(slot) = static_cast<std::int16_t>(index_);
  hot_->stamp(slot, index_).enter = sim_.now();
  begin_local_work(slot);
}

void TierServer::queue_for_worker(std::uint32_t slot) {
  TierTrace& tr = hot_->stamp(slot, index_);
  // Fast path: an admit that can start does so directly — no queue
  // round-trip, no pump call. Between events a free worker implies an empty
  // wait queue, but mid-completion (depart → pull_blocked_from_upstream,
  // before on_service_done's pump) both can hold at once, and FIFO demands
  // the queued request win the freed worker — hence the empty() check.
  if (station_.has_free_worker() && wait_queue_.empty()) {
    tr.service_start = sim_.now();
    hot_->state(slot) = RequestState::kInService;
    station_.start(slot, tr.demand);
  } else {
    hot_->state(slot) = RequestState::kWaiting;
    wait_queue_.push_back(slot);
  }
}

void TierServer::pump() {
  while (station_.has_free_worker() && !wait_queue_.empty()) {
    const std::uint32_t slot = wait_queue_.front();
    wait_queue_.pop_front();
    TierTrace& tr = hot_->stamp(slot, index_);
    tr.service_start = sim_.now();
    hot_->state(slot) = RequestState::kInService;
    station_.start(slot, tr.demand);
  }
}

void TierServer::on_service_done(std::uint32_t slot) {
  mark_span(slot);
  // Variant hook: an OLTP tier releases this transaction's record locks and
  // resumes granted waiters before the slot departs (two-phase release).
  after_local_service(slot);
  if (downstream_ == nullptr) {
    depart(slot);
  } else {
    forward_downstream(slot);
  }
  // The worker that finished is free; take the next waiting request.
  if (!wait_queue_.empty()) pump();
}

void TierServer::forward_downstream(std::uint32_t slot) {
  if (downstream_->accept_from_upstream(slot)) {
    ++awaiting_reply_;
  } else {
    // Downstream thread pool exhausted: hold our thread and wait to be
    // pulled. This is the cross-tier overflow propagation step.
    hot_->state(slot) = RequestState::kBlockedDownstream;
    blocked_.push_back(slot);
  }
}

void TierServer::on_reply_from_downstream(std::uint32_t slot, bool settle) {
  MEMCA_CHECK(awaiting_reply_ > 0);
  --awaiting_reply_;
  depart(slot, settle);
}

void TierServer::depart(std::uint32_t slot, bool settle) {
  TierTrace& tr = hot_->stamp(slot, index_);
  tr.leave = sim_.now();
  MEMCA_CHECK(resident_ > 0);
  --resident_;
  ++pending_completed_;
  residence_time_.record(sim_.now() - tr.enter);
  if (residence_sketch_ != nullptr) {
    residence_sketch_->record(static_cast<double>(sim_.now() - tr.enter));
  }

  // Deliver the reply upstream first (it departs every upstream tier at the
  // same instant — the response path is negligible), then backfill the
  // thread we just freed from the upstream blocked queue.
  if (upstream_ != nullptr) {
    upstream_->on_reply_from_downstream(slot, settle);
  } else if (!settle && static_cast<bool>(batch_reply_sink_)) {
    // Batch drain: stage the reply; flush_chain() delivers the whole span
    // before the drain's event returns.
    reply_buf_.push_back(pool_.get(slot));
  } else {
    MEMCA_CHECK_MSG(static_cast<bool>(reply_sink_), "front tier needs a reply sink");
    reply_sink_(pool_.get(slot));
  }
  pull_blocked_from_upstream();
  if (settle) maybe_flush();
}

void TierServer::on_service_batch_done(const std::uint32_t* slots, std::size_t n) {
  // Singleton groups — the common case off-burst, when completions rarely
  // coincide even on the grid — take the per-slot path: identical cost to
  // exact mode (per-request reply delivery, counters settled by the
  // batch-peek flush), none of the batch staging.
  if (n == 1) {
    on_service_done(slots[0]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    mark_span(slots[i]);
    // Variant hook, per member: an OLTP tier releases the transaction's
    // record locks and resumes granted waiters (which may start service on
    // workers this very group just freed).
    after_local_service(slots[i]);
  }
  if (downstream_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) depart(slots[i], /*settle=*/false);
  } else {
    const std::size_t taken = downstream_->accept_batch_from_upstream(slots, n);
    awaiting_reply_ += static_cast<int>(taken);
    for (std::size_t i = taken; i < n; ++i) {
      // Downstream thread pool exhausted mid-batch: the rest hold our
      // threads and wait to be pulled (cross-tier overflow propagation).
      hot_->state(slots[i]) = RequestState::kBlockedDownstream;
      blocked_.push_back(slots[i]);
    }
  }
  // The group's workers are all free; take the next waiting requests.
  if (!wait_queue_.empty()) pump();
  flush_chain();
}

std::size_t TierServer::accept_batch_from_upstream(const std::uint32_t* slots,
                                                   std::size_t n) {
  pending_offered_ += static_cast<std::int64_t>(n);
  std::size_t taken = 0;
  // Admission only ever consumes threads, so the accepted set is a prefix:
  // once full, every later member of the batch is rejected.
  while (taken < n && !full()) {
    admit(slots[taken]);
    ++taken;
  }
  pending_rejected_ += static_cast<std::int64_t>(n - taken);
  return taken;
}

void TierServer::flush_chain() {
  TierServer* t = this;
  while (t->upstream_ != nullptr) t = t->upstream_;
  for (; t != nullptr; t = t->downstream_) {
    t->flush_pending();
    t->flush_replies();
  }
}

void TierServer::flush_replies() {
  if (reply_buf_.empty()) return;
  batch_reply_sink_(reply_buf_.data(), reply_buf_.size());
  reply_buf_.clear();
}

void TierServer::pull_blocked_from_upstream() {
  if (upstream_ == nullptr) return;
  while (!full() && !upstream_->blocked_.empty()) {
    const std::uint32_t slot = upstream_->blocked_.front();
    upstream_->blocked_.pop_front();
    ++upstream_->awaiting_reply_;
    ++pending_offered_;
    admit(slot);
  }
}

}  // namespace memca::queueing
