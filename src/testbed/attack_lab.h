// Measurement harness shared by the figure benches: runs a configured
// attack against a fresh testbed and collects the metrics the paper's
// evaluation reports (percentile RTs, drop fractions, CPU series, burst
// telemetry, analytic-model predictions for the same run).
#pragma once

#include <memory>

#include "core/analytic_model.h"
#include "flightrec/incident.h"
#include "flightrec/quantile_sketch.h"
#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"
#include "trace/attributor.h"

namespace memca::testbed {

struct AttackLabConfig {
  TestbedConfig testbed;
  core::AttackParams params;
  /// Interval jitter passed to the burst scheduler.
  double jitter = 0.0;
  /// Attack-free warm-up simulated before the attack starts and the
  /// measurement window opens. In a sweep, cells sharing (testbed, warmup)
  /// run this prefix once per worker and rewind to a checkpoint of it
  /// instead of re-simulating (see run_attack_lab_sweep).
  SimTime warmup = 0;
  SimTime duration = 3 * kMinute;
  bool attack_enabled = true;
  /// Tail cutoff for the per-cause attribution (only meaningful when
  /// config.testbed.trace is set).
  SimTime tail_threshold = sec(std::int64_t{1});
};

struct AttackLabResult {
  /// Degradation index observed while a burst is ON.
  double d_on = 1.0;
  /// Client response-time quantiles (µs).
  SimTime client_p50 = 0, client_p95 = 0, client_p98 = 0, client_p99 = 0;
  SimTime client_p999 = 0;
  /// Per-tier p95 residence times, front first (µs).
  std::vector<SimTime> tier_p95;
  double throughput = 0.0;
  std::int64_t drops = 0;
  double drop_fraction = 0.0;
  /// MySQL CPU utilization statistics.
  double cpu_mean = 0.0;
  double cpu_max_50ms = 0.0;
  double cpu_max_1s = 0.0;
  double cpu_max_1min = 0.0;
  bool autoscaler_triggered = false;
  /// Mean contiguous MySQL CPU saturation length, seconds (the measured
  /// millibottleneck), 0 if none observed.
  double mean_saturation_s = 0.0;
  /// Analytic prediction for the same run (valid when attack_enabled).
  core::AttackModelOutputs model;
  std::int64_t bursts = 0;
  /// Per-cause tail attribution over the whole run (populated iff
  /// config.testbed.trace — needs the full arena, not the flight ring).
  trace::TailSummary tail;
  /// Incident records (populated iff config.testbed.flightrec), in
  /// emission order; deterministic per cell, so a sweep's concatenation in
  /// cell order is independent of the thread count.
  std::vector<flightrec::Incident> incidents;
  /// Incidents past FlightRecorderConfig::max_incidents (counted, unstored).
  std::int64_t incidents_dropped = 0;
  /// Streaming client-latency sketch (populated iff config.testbed.flightrec).
  flightrec::QuantileSketch client_sketch;
  /// The cell's finalized metrics registry (populated iff
  /// config.testbed.metrics). Movable with the result, report-ready.
  std::unique_ptr<metrics::Registry> registry;
};

/// Runs one experiment cell. Deterministic given config.testbed.seed.
AttackLabResult run_attack_lab(const AttackLabConfig& config);

/// Runs a batch of independent cells on a thread pool (`threads` workers;
/// 0 = hardware concurrency / MEMCA_SWEEP_THREADS, 1 = inline sequential)
/// and returns results in cell order.
///
/// Consecutive cells on a worker that share the same *prefix* — every
/// TestbedConfig field plus warmup — reuse one warm world: the worker
/// builds the testbed once, runs the warm-up, checkpoints it in place
/// (RubbosTestbed::snapshot) and rewinds before each cell instead of
/// re-simulating the prefix. Cells whose prefix differs from their
/// predecessor's fall back to cold construction, so ordering the grid with
/// the prefix varying slowest maximises reuse. Results are bit-identical to
/// calling run_attack_lab sequentially, regardless of thread count or how
/// many cells shared a world — the checkpoint invariant the snapshot test
/// suite enforces.
std::vector<AttackLabResult> run_attack_lab_sweep(std::vector<AttackLabConfig> configs,
                                                  int threads = 0);

/// Merges every cell registry of a sweep (in cell order) into one registry.
/// Because each cell registers its instruments in the same order and the
/// merge is additive, the merged bytes are independent of the thread count
/// that ran the sweep. Cells without a registry are skipped; returns null
/// when no cell carried one.
std::unique_ptr<metrics::Registry> merge_sweep_registries(
    std::vector<AttackLabResult>& results);

}  // namespace memca::testbed
