// One-call construction of the paper's full evaluation scenario (Fig. 8):
//
//   3 hosts, one per tier; the host of the *target tier* (MySQL by default)
//   additionally carries the co-located adversary VM and, optionally,
//   noisy-neighbor tenant VMs. A CrossResourceModel couples that host's
//   memory contention into the target tier's service speed. 3500
//   closed-loop RUBBoS users drive the 3-tier system; fine-grained (50 ms)
//   monitors sample the target tier's CPU utilization and per-tier queue
//   lengths.
//
// Used by the examples, the figure benches and the integration tests, so
// every consumer sees the same calibration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/background.h"
#include "cloud/contention.h"
#include "cloud/host.h"
#include "common/log.h"
#include "flightrec/flight_recorder.h"
#include "core/analytic_model.h"
#include "core/memca.h"
#include "metrics/registry.h"
#include "metrics/scraper.h"
#include "monitor/sampler.h"
#include "oltp/oltp_tier.h"
#include "queueing/ntier.h"
#include "snapshot/world_snapshot.h"
#include "trace/recorder.h"
#include "workload/clients.h"
#include "workload/profile.h"
#include "workload/router.h"

namespace memca::testbed {

enum class CloudProfile {
  /// The paper's private OpenStack/KVM cloud (Xeon E5-2603 v3 hosts).
  kPrivateCloud,
  /// Amazon EC2 dedicated nodes (two ten-core E5-2680, c3.large VMs).
  kAmazonEc2,
};

const char* to_string(CloudProfile profile);

/// How the target (bottleneck) tier serves requests.
enum class BottleneckKind {
  /// The paper's model: exponential-service FIFO thread pool.
  kFifo,
  /// Lock/CC-aware OLTP variant: each request is a transaction taking
  /// Zipf-distributed record locks (see oltp::OltpTierServer).
  kOltp,
};

const char* to_string(BottleneckKind kind);

struct TestbedConfig {
  CloudProfile cloud = CloudProfile::kAmazonEc2;
  int num_users = 3500;
  /// Client population scheduling (see workload::ClientMode): kExact keeps
  /// the per-user reference model and its byte-stable event streams;
  /// kCohort batches statistically identical users into aggregate arrival
  /// draws — the only mode that scales to millions of users. Overridable
  /// per process with MEMCA_CLIENT_MODE=exact|cohort (applied at
  /// construction, like MEMCA_SWEEP_THREADS for the sweep runner).
  workload::ClientMode client_mode = workload::ClientMode::kExact;
  /// Cohort think-tick granularity, used when client_mode == kCohort.
  SimTime cohort_tick = msec(50);
  /// Keep the raw client (time, rt) response series (Fig. 9d and the
  /// defense ablation read it). Off by default: it grows with every
  /// completion, which is unbounded at population scale.
  bool record_response_series = false;
  /// Service-demand/completion quantum in µs, applied uniformly to all
  /// three tiers (0 = exact service, the byte-stable default). When set,
  /// sampled demands round onto the grid and each tier drains same-instant
  /// completion groups through one simulator event — the raw-speed lever
  /// for population-scale runs, validated against exact mode by the Fig. 2
  /// equivalence gate. Overridable per process with MEMCA_SERVICE_QUANTUM=<µs>
  /// (applied at construction, like MEMCA_CLIENT_MODE).
  std::uint32_t service_quantum_us = 0;
  /// Tier thread limits and vCPUs (paper Condition 1: decreasing threads).
  queueing::TierConfig apache{"apache", 100, 8};
  queueing::TierConfig tomcat{"tomcat", 60, 6};
  queueing::TierConfig mysql{"mysql", 30, 2};
  /// Which tier the adversary co-locates with (2 = MySQL, the paper's
  /// setup; 0/1 for the target-position ablation).
  int target_tier = 2;
  /// Memory bandwidth the target tier's VM needs at full capacity, GB/s
  /// (sets how deep a memory attack cuts: D = achieved / needed).
  double target_bandwidth_demand_gbps = 12.0;
  /// vCPUs of the rented adversary VM (bus-saturation pressure scales with
  /// it; the lock kernel needs only one core).
  int adversary_vcpus = 1;
  /// Extra multi-tenant neighbor VMs on the target host, each running an
  /// ON-OFF noisy memory workload.
  int background_neighbors = 0;
  cloud::NoisyNeighborConfig neighbor_profile;
  /// Fine monitoring granularity (the paper's 50 ms tooling).
  SimTime fine_granularity = msec(50);
  /// Statistics warm-up: client RTs before this are discarded.
  SimTime stats_warmup = sec(std::int64_t{10});
  std::uint64_t seed = 42;
  /// Record a per-request span-event trace (memca_trace) for the whole run.
  /// Off by default: the recorder costs memory proportional to traffic.
  bool trace = false;
  /// Cap on recorded events when tracing (0 = unbounded).
  std::size_t trace_max_events = 0;
  /// Build a metrics registry (memca_metrics) and scrape it through the
  /// run: request counters, per-tier queue-length and utilization series,
  /// capacity-multiplier series, client latency histogram. Off by default.
  bool metrics = false;
  /// Scrape resolution when metrics are on (the paper's 50 ms tooling).
  SimTime metrics_resolution = msec(50);
  /// Service discipline of the target tier. kFifo leaves the paper's model
  /// (and its byte-exact streams) untouched; kOltp swaps in the
  /// contention-aware database tier configured by `oltp`.
  BottleneckKind bottleneck = BottleneckKind::kFifo;
  /// Transaction/lock-table profile, used only when bottleneck == kOltp.
  oltp::OltpConfig oltp;
  /// Always-on flight recorder (memca_flightrec): bounded span ring,
  /// streaming latency sketches, high-resolution timeline and incident
  /// detection. Off by default; cheap enough (< 5 % on the full testbed)
  /// to leave on in any production-style run.
  bool flightrec = false;
  /// Span-ring budget when the flight recorder is on and full tracing is
  /// off (events, rounded up to a power of two). 2^16 events = 2.5 MB
  /// covers tens of seconds of testbed traffic — enough history to pin a
  /// multi-RTO VLRT request end to end.
  std::size_t flightrec_ring_events = std::size_t{1} << 16;
  /// Detector thresholds and budgets. resolution and depth are overridden
  /// from fine_granularity and the tier count at construction.
  flightrec::FlightRecorderConfig flightrec_config;
};

class RubbosTestbed {
 public:
  explicit RubbosTestbed(TestbedConfig config = {});
  ~RubbosTestbed();
  RubbosTestbed(const RubbosTestbed&) = delete;
  RubbosTestbed& operator=(const RubbosTestbed&) = delete;

  /// Starts clients, monitors and background neighbors. Call once, then run
  /// the simulator.
  void start();

  Simulator& sim() { return sim_; }
  queueing::NTierSystem& system() { return *system_; }
  workload::RequestRouter& router() { return *router_; }
  workload::ClosedLoopClients& clients() { return *clients_; }
  const workload::WorkloadProfile& profile() const { return profile_; }

  /// The host carrying the target-tier VM and the adversary VM.
  cloud::Host& target_host() { return *hosts_[static_cast<std::size_t>(config_.target_tier)]; }
  cloud::Host& host(std::size_t tier);
  cloud::VmId target_vm() const { return target_vm_; }
  cloud::VmId adversary_vm() const { return adversary_vm_; }
  queueing::TierServer& target_tier() {
    return system_->tier(static_cast<std::size_t>(config_.target_tier));
  }
  /// The OLTP view of the target tier; nullptr unless
  /// config.bottleneck == BottleneckKind::kOltp.
  oltp::OltpTierServer* oltp_tier() { return oltp_tier_; }
  const oltp::OltpTierServer* oltp_tier() const { return oltp_tier_; }
  cloud::CrossResourceModel& coupling() { return *coupling_; }

  /// Compatibility aliases for the default (MySQL-targeted) topology.
  cloud::Host& mysql_host() { return target_host(); }
  cloud::VmId mysql_vm() const { return target_vm_; }

  /// Fine-grained target-tier CPU utilization (50 ms windows).
  monitor::UtilizationSampler& mysql_cpu() { return *target_cpu_; }
  monitor::UtilizationSampler& target_cpu() { return *target_cpu_; }
  /// Fine-grained queue-length gauges, one per tier (front first).
  monitor::GaugeSampler& queue_gauge(std::size_t tier);

  /// Builds a MemCA attack against this testbed (adversary VM + router
  /// already wired). Caller owns it.
  std::unique_ptr<core::MemcaAttack> make_attack(core::MemcaConfig config);

  /// Analytic-model inputs matching this calibration (for model-vs-sim
  /// comparisons): per-tier Q, C_OFF, λ.
  std::vector<core::TierModelParams> model_params() const;

  const TestbedConfig& config() const { return config_; }
  /// Fresh RNG stream derived from the testbed seed.
  Rng fork_rng(std::string_view label) const { return root_rng_.fork(label); }

  /// The span-event recorder: the whole-run arena when config.trace is
  /// set, the bounded ring when only config.flightrec is, else nullptr.
  /// Attacks built through make_attack share it (burst ON/OFF marks).
  trace::TraceRecorder* trace() { return trace_.get(); }
  const trace::TraceRecorder* trace() const { return trace_.get(); }

  /// The flight recorder, nullptr unless config.flightrec is set. Ticking
  /// from start() on; call finalize_metrics() (or flight()->finalize())
  /// after the run to close a still-open incident window.
  flightrec::FlightRecorder* flight() { return flight_.get(); }
  const flightrec::FlightRecorder* flight() const { return flight_.get(); }
  /// Display names of the three tiers, front first (exporter input).
  std::vector<std::string> tier_names() const;

  /// The metrics registry, nullptr unless config.metrics is set. Scraped at
  /// config.metrics_resolution from start() on.
  metrics::Registry* registry() { return registry_.get(); }
  const metrics::Registry* registry() const { return registry_.get(); }
  /// Syncs end-of-run totals into the registry — engine self-profile
  /// (events executed, callback-pool occupancy, event-queue high-water,
  /// sim clock), attack burst count and ON time when `attack` is given, and
  /// warn/error log-line tallies. Call once after the run, before building
  /// a run report or merging registries. No-op without metrics.
  void finalize_metrics(const core::MemcaAttack* attack = nullptr);
  /// Hands the registry to the caller (e.g. a sweep-cell result that must
  /// outlive the testbed). The scraper is stopped first. Null when metrics
  /// were off or already released.
  std::unique_ptr<metrics::Registry> release_metrics();

  /// Takes (or moves forward) an in-place checkpoint of the entire world:
  /// simulator event state, request pool, tiers, clients, hosts, samplers,
  /// trace and metrics. Typically called after start() + a warm-up run.
  /// Objects created *after* the snapshot (an attack from make_attack, late
  /// probes/observers) must be destroyed before rolling back; their
  /// registrations are truncated away by rollback(). Do not release_metrics
  /// between a snapshot and its rollbacks.
  void snapshot();
  /// Rewinds the world to the last snapshot(), in place: every pointer and
  /// handle bound at capture time stays valid, and continuing the run
  /// produces byte-identical results to a fresh world driven to the same
  /// point. May be called repeatedly; never allocates.
  void rollback();
  bool has_snapshot() const {
    return world_snapshot_ != nullptr && world_snapshot_->captured();
  }

 private:
  TestbedConfig config_;
  Simulator sim_;
  Rng root_rng_;
  workload::WorkloadProfile profile_;

  std::vector<std::unique_ptr<cloud::Host>> hosts_;
  cloud::VmId target_vm_ = cloud::kInvalidVm;
  cloud::VmId adversary_vm_ = cloud::kInvalidVm;
  std::unique_ptr<cloud::CrossResourceModel> coupling_;
  std::vector<std::unique_ptr<cloud::NoisyNeighbor>> neighbors_;

  std::unique_ptr<trace::TraceRecorder> trace_;
  std::unique_ptr<flightrec::FlightRecorder> flight_;
  std::unique_ptr<metrics::Registry> registry_;
  std::unique_ptr<metrics::Scraper> scraper_;
  /// Tallies warn/error lines this run emits (the testbed is built and run
  /// on one thread, so the scope sees exactly this cell's lines).
  std::unique_ptr<ScopedLogCounter> log_counter_;
  std::unique_ptr<queueing::NTierSystem> system_;
  /// Non-owning view into system_'s target tier when the bottleneck is OLTP.
  oltp::OltpTierServer* oltp_tier_ = nullptr;
  std::unique_ptr<workload::RequestRouter> router_;
  std::unique_ptr<workload::ClosedLoopClients> clients_;

  std::unique_ptr<monitor::UtilizationSampler> target_cpu_;
  std::vector<std::unique_ptr<monitor::GaugeSampler>> queue_gauges_;
  /// Per-tier differencing cursor of the utilization probes (one slot per
  /// tier, address-stable — the probe closures point into it so the state
  /// is checkpointable instead of hiding in a mutable lambda capture).
  std::vector<double> util_probe_last_;
  std::unique_ptr<snapshot::WorldSnapshot> world_snapshot_;
  bool started_ = false;
};

}  // namespace memca::testbed
