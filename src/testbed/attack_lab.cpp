#include "testbed/attack_lab.h"

#include <bit>
#include <functional>
#include <string>
#include <utility>

#include "sweep/sweep_runner.h"

namespace memca::testbed {

namespace {

/// Runs the attack + measurement window against an already-warmed testbed
/// and harvests the cell's result. Shared verbatim by the cold path (fresh
/// testbed) and the warm path (checkpointed testbed after a rollback), which
/// is what makes the two byte-identical: they execute the same code against
/// bit-identical world state. `warm` only changes how the registry is
/// harvested — a warm world keeps its registry (the next rollback needs it),
/// so the result gets a value clone instead of ownership.
AttackLabResult measure_cell(RubbosTestbed& bed, const AttackLabConfig& config, bool warm) {
  AttackLabResult result;
  std::unique_ptr<core::MemcaAttack> attack;
  if (config.attack_enabled) {
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params = config.params;
    memca.interval_jitter = config.jitter;
    attack = bed.make_attack(memca);
    attack->start();
    bed.sim().run_for(0);  // the first burst is ON now
    result.d_on = bed.coupling().capacity_multiplier();
  }
  bed.sim().run_for(config.duration);
  if (attack) {
    result.bursts = attack->scheduler().bursts_fired();
    attack->stop();
  }

  const auto& rt = bed.clients().response_times();
  result.client_p50 = rt.quantile(0.50);
  result.client_p95 = rt.quantile(0.95);
  result.client_p98 = rt.quantile(0.98);
  result.client_p99 = rt.quantile(0.99);
  result.client_p999 = rt.quantile(0.999);
  for (std::size_t i = 0; i < bed.system().num_tiers(); ++i) {
    result.tier_p95.push_back(bed.system().tier(i).residence_time().quantile(0.95));
  }
  result.throughput = bed.clients().throughput();
  result.drops = bed.clients().dropped_attempts();
  const double attempts =
      static_cast<double>(bed.clients().completed() + bed.clients().dropped_attempts());
  result.drop_fraction =
      attempts > 0 ? static_cast<double>(result.drops) / attempts : 0.0;

  const TimeSeries& cpu = bed.mysql_cpu().series();
  result.cpu_mean = cpu.mean();
  result.cpu_max_50ms = cpu.max();
  result.cpu_max_1s = cpu.resample_mean(sec(std::int64_t{1})).max();
  result.cpu_max_1min = cpu.resample_mean(kMinute).max();
  result.autoscaler_triggered =
      monitor::evaluate_autoscaler(cpu, monitor::AutoScalerConfig{}).triggered;

  // Mean contiguous saturation run (>98% busy windows).
  double sat_sum = 0.0;
  int sat_runs = 0;
  int run_len = 0;
  for (const Sample& s : cpu.samples()) {
    if (s.value > 0.98) {
      ++run_len;
    } else if (run_len > 0) {
      sat_sum += static_cast<double>(run_len) * to_seconds(bed.config().fine_granularity);
      ++sat_runs;
      run_len = 0;
    }
  }
  if (sat_runs > 0) result.mean_saturation_s = sat_sum / sat_runs;

  if (config.attack_enabled) {
    core::AttackModelInputs inputs;
    inputs.tiers = bed.model_params();
    inputs.degradation_index = result.d_on;
    inputs.burst_length = config.params.burst_length;
    inputs.burst_interval = config.params.burst_interval;
    result.model = core::evaluate_attack_model(inputs);
  }

  // Whole-run attribution needs the full arena stream; the flight ring only
  // retains a bounded suffix, so skip it when merely flight-recording.
  if (config.testbed.trace && bed.trace() != nullptr) {
    trace::TailAttributor attributor(*bed.trace(), bed.system().depth(),
                                     trace::AttributorConfig{config.tail_threshold});
    result.tail = attributor.summary();
  }

  // finalize_metrics also closes a still-open incident window, so it must
  // run even when the cell carries no registry.
  if (bed.registry() != nullptr || bed.flight() != nullptr) {
    bed.finalize_metrics(attack.get());
  }
  if (bed.flight() != nullptr) {
    result.incidents = bed.flight()->incidents();
    result.incidents_dropped = bed.flight()->incidents_dropped();
    result.client_sketch = bed.flight()->client_latency();
  }

  if (bed.registry() != nullptr) {
    if (warm) {
      result.registry = std::make_unique<metrics::Registry>();
      bed.registry()->clone_values_into(*result.registry);
    } else {
      result.registry = bed.release_metrics();
    }
  }
  return result;
}

/// A worker-cached testbed: built once, warmed once, checkpointed in place.
/// Each cell sharing its prefix key rewinds to the checkpoint and runs only
/// its own measurement window.
struct WarmWorld {
  RubbosTestbed bed;

  explicit WarmWorld(const AttackLabConfig& config) : bed(config.testbed) {
    bed.start();
    if (config.warmup > 0) bed.sim().run_for(config.warmup);
    bed.snapshot();
  }
};

void put(std::string& key, std::int64_t v) {
  key += std::to_string(v);
  key += '|';
}

void put(std::string& key, double v) {
  // Raw bit pattern: the key must distinguish values serialize() would.
  key += std::to_string(std::bit_cast<std::uint64_t>(v));
  key += '|';
}

void put(std::string& key, const std::string& v) {
  key += v;
  key += '|';
}

void put(std::string& key, const queueing::TierConfig& tier) {
  put(key, tier.name);
  put(key, std::int64_t{tier.threads});
  put(key, std::int64_t{tier.workers});
}

/// Serializes every field that shapes the world before the attack starts:
/// the full TestbedConfig plus the warm-up length. Cells agreeing on this
/// key are interchangeable up to the measurement window.
std::string prefix_key(const AttackLabConfig& config) {
  const TestbedConfig& bed = config.testbed;
  std::string key;
  put(key, std::int64_t{static_cast<int>(bed.cloud)});
  put(key, std::int64_t{bed.num_users});
  put(key, std::int64_t{static_cast<int>(bed.client_mode)});
  put(key, bed.cohort_tick);
  // Quantized service changes the event stream wholesale; never share a
  // warmed prefix across different grids.
  put(key, std::int64_t{bed.service_quantum_us});
  put(key, std::int64_t{bed.record_response_series});
  put(key, bed.apache);
  put(key, bed.tomcat);
  put(key, bed.mysql);
  put(key, std::int64_t{bed.target_tier});
  put(key, bed.target_bandwidth_demand_gbps);
  put(key, std::int64_t{bed.adversary_vcpus});
  put(key, std::int64_t{bed.background_neighbors});
  put(key, bed.neighbor_profile.on_mean);
  put(key, bed.neighbor_profile.off_mean);
  put(key, bed.neighbor_profile.demand_mean_gbps);
  put(key, bed.neighbor_profile.demand_cv);
  put(key, bed.fine_granularity);
  put(key, bed.stats_warmup);
  put(key, static_cast<std::int64_t>(bed.seed));
  put(key, std::int64_t{bed.trace});
  put(key, static_cast<std::int64_t>(bed.trace_max_events));
  put(key, std::int64_t{bed.metrics});
  put(key, bed.metrics_resolution);
  put(key, std::int64_t{static_cast<int>(bed.bottleneck)});
  put(key, static_cast<std::int64_t>(bed.oltp.num_records));
  put(key, bed.oltp.zipf_theta);
  put(key, std::int64_t{bed.oltp.short_txn.records});
  put(key, bed.oltp.short_txn.write_ratio);
  put(key, bed.oltp.short_txn.demand_multiplier);
  put(key, std::int64_t{bed.oltp.long_txn.records});
  put(key, bed.oltp.long_txn.write_ratio);
  put(key, bed.oltp.long_txn.demand_multiplier);
  put(key, bed.oltp.long_txn_fraction);
  put(key, std::int64_t{static_cast<int>(bed.oltp.scheme)});
  put(key, bed.oltp.backoff_base_us);
  put(key, std::int64_t{bed.oltp.backoff_cap});
  put(key, std::int64_t{bed.flightrec});
  put(key, static_cast<std::int64_t>(bed.flightrec_ring_events));
  put(key, bed.flightrec_config.resolution);
  put(key, static_cast<std::int64_t>(bed.flightrec_config.timeline_frames));
  put(key, bed.flightrec_config.vlrt_threshold);
  put(key, bed.flightrec_config.dip_threshold);
  put(key, bed.flightrec_config.quiet_close);
  put(key, static_cast<std::int64_t>(bed.flightrec_config.depth));
  put(key, static_cast<std::int64_t>(bed.flightrec_config.residence_decimate_shift));
  put(key, static_cast<std::int64_t>(bed.flightrec_config.client_decimate_shift));
  put(key, static_cast<std::int64_t>(bed.flightrec_config.pin_flush_period));
  put(key, static_cast<std::int64_t>(bed.flightrec_config.max_incidents));
  put(key, static_cast<std::int64_t>(bed.flightrec_config.max_pinned_events));
  put(key, config.warmup);
  return key;
}

}  // namespace

AttackLabResult run_attack_lab(const AttackLabConfig& config) {
  RubbosTestbed bed(config.testbed);
  bed.start();
  if (config.warmup > 0) bed.sim().run_for(config.warmup);
  return measure_cell(bed, config, /*warm=*/false);
}

std::vector<AttackLabResult> run_attack_lab_sweep(std::vector<AttackLabConfig> configs,
                                                  int threads) {
  sweep::SweepRunner runner({threads});
  return runner.map(std::move(configs),
                    [](const AttackLabConfig& config, sweep::WorkerCache& cache) {
                      WarmWorld& world = cache.get_or_build<WarmWorld>(
                          prefix_key(config),
                          [&config] { return std::make_unique<WarmWorld>(config); });
                      // A fresh world's snapshot matches its live state, so
                      // rolling back unconditionally is an identity there
                      // and a rewind everywhere else.
                      world.bed.rollback();
                      return measure_cell(world.bed, config, /*warm=*/true);
                    });
}

std::unique_ptr<metrics::Registry> merge_sweep_registries(
    std::vector<AttackLabResult>& results) {
  std::unique_ptr<metrics::Registry> merged;
  for (AttackLabResult& result : results) {
    if (result.registry == nullptr) continue;
    if (merged == nullptr) merged = std::make_unique<metrics::Registry>();
    merged->merge(*result.registry);
  }
  return merged;
}

}  // namespace memca::testbed
