#include "testbed/attack_lab.h"

#include <functional>
#include <utility>

#include "sweep/sweep_runner.h"

namespace memca::testbed {

AttackLabResult run_attack_lab(const AttackLabConfig& config) {
  RubbosTestbed bed(config.testbed);
  bed.start();

  AttackLabResult result;
  std::unique_ptr<core::MemcaAttack> attack;
  if (config.attack_enabled) {
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params = config.params;
    memca.interval_jitter = config.jitter;
    attack = bed.make_attack(memca);
    attack->start();
    bed.sim().run_for(0);  // the first burst is ON now
    result.d_on = bed.coupling().capacity_multiplier();
  }
  bed.sim().run_for(config.duration);
  if (attack) {
    result.bursts = attack->scheduler().bursts_fired();
    attack->stop();
  }

  const auto& rt = bed.clients().response_times();
  result.client_p50 = rt.quantile(0.50);
  result.client_p95 = rt.quantile(0.95);
  result.client_p98 = rt.quantile(0.98);
  result.client_p99 = rt.quantile(0.99);
  for (std::size_t i = 0; i < bed.system().num_tiers(); ++i) {
    result.tier_p95.push_back(bed.system().tier(i).residence_time().quantile(0.95));
  }
  result.throughput = bed.clients().throughput();
  result.drops = bed.clients().dropped_attempts();
  const double attempts =
      static_cast<double>(bed.clients().completed() + bed.clients().dropped_attempts());
  result.drop_fraction =
      attempts > 0 ? static_cast<double>(result.drops) / attempts : 0.0;

  const TimeSeries& cpu = bed.mysql_cpu().series();
  result.cpu_mean = cpu.mean();
  result.cpu_max_50ms = cpu.max();
  result.cpu_max_1s = cpu.resample_mean(sec(std::int64_t{1})).max();
  result.cpu_max_1min = cpu.resample_mean(kMinute).max();
  result.autoscaler_triggered =
      monitor::evaluate_autoscaler(cpu, monitor::AutoScalerConfig{}).triggered;

  // Mean contiguous saturation run (>98% busy windows).
  double sat_sum = 0.0;
  int sat_runs = 0;
  int run_len = 0;
  for (const Sample& s : cpu.samples()) {
    if (s.value > 0.98) {
      ++run_len;
    } else if (run_len > 0) {
      sat_sum += static_cast<double>(run_len) * to_seconds(bed.config().fine_granularity);
      ++sat_runs;
      run_len = 0;
    }
  }
  if (sat_runs > 0) result.mean_saturation_s = sat_sum / sat_runs;

  if (config.attack_enabled) {
    core::AttackModelInputs inputs;
    inputs.tiers = bed.model_params();
    inputs.degradation_index = result.d_on;
    inputs.burst_length = config.params.burst_length;
    inputs.burst_interval = config.params.burst_interval;
    result.model = core::evaluate_attack_model(inputs);
  }

  if (bed.trace() != nullptr) {
    trace::TailAttributor attributor(*bed.trace(), bed.system().depth(),
                                     trace::AttributorConfig{config.tail_threshold});
    result.tail = attributor.summary();
  }

  if (bed.registry() != nullptr) {
    bed.finalize_metrics(attack.get());
    result.registry = bed.release_metrics();
  }
  return result;
}

std::vector<AttackLabResult> run_attack_lab_sweep(std::vector<AttackLabConfig> configs,
                                                  int threads) {
  sweep::SweepRunner runner({threads});
  return runner.map(std::move(configs),
                    [](const AttackLabConfig& config) { return run_attack_lab(config); });
}

std::unique_ptr<metrics::Registry> merge_sweep_registries(
    std::vector<AttackLabResult>& results) {
  std::unique_ptr<metrics::Registry> merged;
  for (AttackLabResult& result : results) {
    if (result.registry == nullptr) continue;
    if (merged == nullptr) merged = std::make_unique<metrics::Registry>();
    merged->merge(*result.registry);
  }
  return merged;
}

}  // namespace memca::testbed
