#include "testbed/rubbos_testbed.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "metrics/names.h"

namespace memca::testbed {

const char* to_string(CloudProfile profile) {
  switch (profile) {
    case CloudProfile::kPrivateCloud:
      return "private-cloud";
    case CloudProfile::kAmazonEc2:
      return "amazon-ec2";
  }
  return "?";
}

const char* to_string(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::kFifo:
      return "fifo";
    case BottleneckKind::kOltp:
      return "oltp";
  }
  return "?";
}

namespace {
cloud::HostSpec host_spec_for(CloudProfile profile) {
  return profile == CloudProfile::kPrivateCloud ? cloud::xeon_e5_2603_v3()
                                                : cloud::ec2_dedicated_node();
}
}  // namespace

RubbosTestbed::RubbosTestbed(TestbedConfig config)
    : config_(config), root_rng_(config.seed), profile_(workload::rubbos_profile()) {
  MEMCA_CHECK_MSG(config_.num_users > 0, "testbed needs users");
  // Environment override for A/B runs without touching the caller: any
  // consumer of this testbed can be flipped between the exact and cohort
  // client models per process.
  if (const char* env = std::getenv("MEMCA_CLIENT_MODE")) {
    const std::string_view mode(env);
    if (mode == "cohort") {
      config_.client_mode = workload::ClientMode::kCohort;
    } else if (mode == "exact") {
      config_.client_mode = workload::ClientMode::kExact;
    } else if (!mode.empty()) {
      MEMCA_CHECK_MSG(false, "MEMCA_CLIENT_MODE must be 'exact' or 'cohort'");
    }
  }
  // Same idiom for quantized service: MEMCA_SERVICE_QUANTUM=<µs> flips any
  // consumer of this testbed into grid-quantized batch-drain mode (0 = exact).
  if (const char* env = std::getenv("MEMCA_SERVICE_QUANTUM")) {
    const std::string_view text(env);
    if (!text.empty()) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      MEMCA_CHECK_MSG(end != nullptr && *end == '\0' && parsed >= 0,
                      "MEMCA_SERVICE_QUANTUM must be a non-negative integer (µs)");
      config_.service_quantum_us = static_cast<std::uint32_t>(parsed);
    }
  }
  // The quantum is chain-wide (demands quantize once, in the shared staging
  // arena), so the per-tier configs inherit the testbed-level knob.
  config_.apache.service_quantum_us = config_.service_quantum_us;
  config_.tomcat.service_quantum_us = config_.service_quantum_us;
  config_.mysql.service_quantum_us = config_.service_quantum_us;
  MEMCA_CHECK_MSG(config_.target_tier >= 0 && config_.target_tier < 3,
                  "target tier must name one of the three tiers");
  MEMCA_CHECK_MSG(config_.background_neighbors >= 0, "neighbor count must be non-negative");

  const std::vector<queueing::TierConfig> tier_configs = {config_.apache, config_.tomcat,
                                                          config_.mysql};

  // One dedicated host per tier (the paper's Fig. 8 topology).
  for (std::size_t i = 0; i < tier_configs.size(); ++i) {
    hosts_.push_back(std::make_unique<cloud::Host>(host_spec_for(config_.cloud)));
    const cloud::VmId vm = hosts_.back()->add_vm(
        cloud::VmSpec{tier_configs[i].name + "-vm", tier_configs[i].workers,
                      cloud::Placement::kPinnedPackage, 0});
    if (static_cast<int>(i) == config_.target_tier) target_vm_ = vm;
  }
  // The adversary rents a VM co-located on the target tier's host, same
  // package — the co-location step itself is out of scope (Section II-B).
  adversary_vm_ = target_host().add_vm(cloud::VmSpec{
      "adversary-vm", config_.adversary_vcpus, cloud::Placement::kPinnedPackage, 0});
  // Optional multi-tenant noise on the same host.
  for (int i = 0; i < config_.background_neighbors; ++i) {
    const cloud::VmId vm = target_host().add_vm(cloud::VmSpec{
        "neighbor-" + std::to_string(i), 1, cloud::Placement::kPinnedPackage, 0});
    neighbors_.push_back(std::make_unique<cloud::NoisyNeighbor>(
        sim_, target_host(), vm, config_.neighbor_profile,
        root_rng_.fork("neighbor-" + std::to_string(i))));
  }

  // The OLTP bottleneck swaps the target tier for the lock-table variant
  // through the factory hook; every other tier (and the whole system when
  // the bottleneck is FIFO) takes the nullptr fallback, so the default
  // topology is built by the exact same code path as before. The OLTP
  // tier's sampling draws come from its own forked stream, so enabling it
  // never perturbs the clients' or neighbors' draws.
  queueing::TierFactory factory;
  if (config_.bottleneck == BottleneckKind::kOltp) {
    factory = [this](Simulator& sim, queueing::RequestPool& pool,
                     const queueing::TierConfig& tier_config,
                     std::size_t index) -> std::unique_ptr<queueing::TierServer> {
      if (static_cast<int>(index) != config_.target_tier) return nullptr;
      auto tier = std::make_unique<oltp::OltpTierServer>(
          sim, pool, tier_config, index, config_.oltp, root_rng_.fork("oltp"));
      oltp_tier_ = tier.get();
      return tier;
    };
  }
  system_ = std::make_unique<queueing::NTierSystem>(sim_, tier_configs, factory);
  MEMCA_CHECK_MSG(system_->satisfies_condition1(),
                  "testbed calibration must satisfy Condition 1");

  if (config_.trace) {
    trace_ = std::make_unique<trace::TraceRecorder>(
        trace::TraceRecorder::Config{config_.trace_max_events});
  } else if (config_.flightrec) {
    // Flight-recorder mode: same hooks, bounded ring instead of the
    // unbounded debug arena — always-on memory stays fixed.
    trace::TraceRecorder::Config ring;
    ring.ring_capacity = config_.flightrec_ring_events;
    trace_ = std::make_unique<trace::TraceRecorder>(ring);
  }
  if (trace_ != nullptr) system_->set_trace(trace_.get());

  if (config_.metrics) {
    registry_ = std::make_unique<metrics::Registry>();
    log_counter_ = std::make_unique<ScopedLogCounter>();
    scraper_ = std::make_unique<metrics::Scraper>(
        sim_, *registry_, metrics::ScraperConfig{config_.metrics_resolution});
    // Sized once, before the probes capture element addresses.
    util_probe_last_.assign(system_->num_tiers(), 0.0);
    for (std::size_t i = 0; i < system_->num_tiers(); ++i) {
      queueing::TierServer& tier = system_->tier(i);
      const std::string& name = tier.name();
      queueing::TierMetrics handles;
      handles.offered = registry_->counter(metrics::names::kTierRequestsTotal,
                                           {{"tier", name}, {"event", "offered"}});
      handles.admitted = registry_->counter(metrics::names::kTierRequestsTotal,
                                            {{"tier", name}, {"event", "admitted"}});
      handles.rejected = registry_->counter(metrics::names::kTierRequestsTotal,
                                            {{"tier", name}, {"event", "rejected"}});
      handles.completed = registry_->counter(metrics::names::kTierRequestsTotal,
                                             {{"tier", name}, {"event", "completed"}});
      tier.set_metrics(handles);
      registry_->probe(metrics::names::kTierQueueLength, {{"tier", name}},
                       [&tier] { return static_cast<double>(tier.resident()); });
      // Windowed utilization: busy-integral delta over the scrape window,
      // normalised by the worker count read at scrape time (elastic
      // scale-out changes it mid-run). Samples are stamped at the scrape
      // instant, i.e. the window *end*.
      registry_->probe(
          metrics::names::kTierUtilization, {{"tier", name}},
          [&tier, period = static_cast<double>(config_.metrics_resolution),
           last = &util_probe_last_[i]] {
            const double integral = tier.busy_worker_time_us();
            const double delta = integral - *last;
            *last = integral;
            const double denom = static_cast<double>(tier.workers()) * period;
            return std::clamp(delta / denom, 0.0, 1.0);
          });
    }
    if (oltp_tier_ != nullptr) {
      oltp::OltpMetrics handles;
      handles.commits =
          registry_->counter(metrics::names::kOltpTxnTotal, {{"event", "commits"}});
      handles.aborts =
          registry_->counter(metrics::names::kOltpTxnTotal, {{"event", "aborts"}});
      handles.lock_waits =
          registry_->counter(metrics::names::kOltpTxnTotal, {{"event", "lock_waits"}});
      handles.lock_wait = registry_->histogram(metrics::names::kOltpLockWaitUs);
      handles.lock_hold = registry_->histogram(metrics::names::kOltpLockHoldUs);
      oltp_tier_->set_oltp_metrics(handles);
      registry_->probe(metrics::names::kOltpLockWaiters, {}, [this] {
        return static_cast<double>(oltp_tier_->lock_table().waiters());
      });
    }
  }

  // Cross-resource coupling: target-host memory contention throttles the
  // target tier's service speed (C_on = D * C_off).
  cloud::CrossResourceParams coupling_params;
  coupling_params.victim_demand_gbps = config_.target_bandwidth_demand_gbps;
  coupling_ = std::make_unique<cloud::CrossResourceModel>(target_host(), target_vm_,
                                                          coupling_params);
  coupling_->on_multiplier_change(
      [this](double multiplier) { target_tier().set_speed_multiplier(multiplier); });
  if (registry_ != nullptr) {
    registry_->probe(metrics::names::kCapacityMultiplier, {},
                     [this] { return coupling_->capacity_multiplier(); });
  }

  router_ = std::make_unique<workload::RequestRouter>(*system_);

  workload::ClientConfig client_config;
  client_config.num_users = config_.num_users;
  client_config.stats_warmup = config_.stats_warmup;
  client_config.mode = config_.client_mode;
  client_config.cohort_tick = config_.cohort_tick;
  client_config.record_response_series = config_.record_response_series;
  clients_ = std::make_unique<workload::ClosedLoopClients>(
      sim_, *router_, profile_, client_config, root_rng_.fork("clients"));
  if (trace_ != nullptr) clients_->set_trace(trace_.get());
  if (registry_ != nullptr) {
    workload::ClientMetrics handles;
    handles.submitted =
        registry_->counter(metrics::names::kRequestsTotal, {{"event", "submitted"}});
    handles.completed =
        registry_->counter(metrics::names::kRequestsTotal, {{"event", "completed"}});
    handles.dropped =
        registry_->counter(metrics::names::kRequestsTotal, {{"event", "dropped"}});
    handles.retransmitted =
        registry_->counter(metrics::names::kRequestsTotal, {{"event", "retransmitted"}});
    handles.failed = registry_->counter(metrics::names::kRequestsTotal, {{"event", "failed"}});
    handles.response_time = registry_->histogram(metrics::names::kClientResponseTimeUs);
    clients_->set_metrics(handles);
  }

  if (config_.flightrec) {
    flightrec::FlightRecorderConfig fc = config_.flightrec_config;
    fc.resolution = config_.fine_granularity;
    fc.depth = system_->num_tiers();
    flight_ = std::make_unique<flightrec::FlightRecorder>(sim_, trace_.get(), fc);
    flight_->set_capacity_probe([this] { return coupling_->capacity_multiplier(); });
    for (std::size_t i = 0; i < system_->num_tiers(); ++i) {
      queueing::TierServer& tier = system_->tier(i);
      flight_->set_queue_depth_probe(i, [&tier] { return tier.resident(); });
      flight_->set_rejected_probe(i, [&tier] { return tier.rejected(); });
      tier.set_residence_sketch(flight_->tier_residence_sketch(i));
    }
    flight_->set_rto_backlog_probe([this] { return clients_->rto_backlog(); });
    clients_->set_completion_observer([this](const workload::CompletionEvent& ev) {
      flight_->on_completion(ev.now, ev.first_sent, ev.user, ev.rt, ev.post_warmup);
    });
  }

  target_cpu_ = std::make_unique<monitor::UtilizationSampler>(
      sim_, [this] { return target_tier().busy_worker_time_us(); },
      std::function<int()>([this] { return target_tier().workers(); }),
      config_.fine_granularity);
  for (std::size_t i = 0; i < system_->num_tiers(); ++i) {
    queue_gauges_.push_back(std::make_unique<monitor::GaugeSampler>(
        sim_, [this, i] { return static_cast<double>(system_->tier(i).resident()); },
        config_.fine_granularity));
  }
}

void RubbosTestbed::start() {
  MEMCA_CHECK_MSG(!started_, "testbed already started");
  started_ = true;
  clients_->start();
  target_cpu_->start();
  for (auto& gauge : queue_gauges_) gauge->start();
  for (auto& neighbor : neighbors_) neighbor->start();
  if (scraper_ != nullptr) scraper_->start();
  if (flight_ != nullptr) flight_->start();
}

RubbosTestbed::~RubbosTestbed() {
  // Destroying a NoisyNeighbor clears its memory activity, which re-notifies
  // the host and can fire the speed-coupling callback into target_tier().
  // Members are destroyed in reverse declaration order — the system would
  // already be gone — so tear the neighbors down first, while the whole
  // host -> coupling -> tier chain is still alive.
  neighbors_.clear();
}

cloud::Host& RubbosTestbed::host(std::size_t tier) {
  MEMCA_CHECK(tier < hosts_.size());
  return *hosts_[tier];
}

monitor::GaugeSampler& RubbosTestbed::queue_gauge(std::size_t tier) {
  MEMCA_CHECK(tier < queue_gauges_.size());
  return *queue_gauges_[tier];
}

std::unique_ptr<core::MemcaAttack> RubbosTestbed::make_attack(core::MemcaConfig config) {
  auto attack = std::make_unique<core::MemcaAttack>(
      sim_, target_host(), adversary_vm_, *router_, std::move(config),
      root_rng_.fork("memca"));
  if (trace_ != nullptr) attack->program().set_trace(trace_.get());
  if (registry_ != nullptr) {
    // The probe references the attack: the caller owns it and must keep it
    // alive for as long as the testbed's simulator runs (every consumer
    // already does — the attack drives the scenario).
    const cloud::MemoryAttackProgram& program = attack->program();
    registry_->probe(metrics::names::kAttackOn, {},
                     [&program] { return program.running() ? 1.0 : 0.0; });
  }
  return attack;
}

namespace {
/// Display label for a sketch quantile (0.95 -> "p95", 0.999 -> "p999").
const char* quantile_label(double q) {
  if (q == 0.50) return "p50";
  if (q == 0.90) return "p90";
  if (q == 0.95) return "p95";
  if (q == 0.99) return "p99";
  if (q == 0.999) return "p999";
  return "p?";
}
}  // namespace

void RubbosTestbed::finalize_metrics(const core::MemcaAttack* attack) {
  // Close a still-open incident window first so the counters below (and any
  // later incident export) see the complete run.
  if (flight_ != nullptr) flight_->finalize();
  if (registry_ == nullptr) return;
  registry_->counter(metrics::names::kEngineEventsTotal)
      .set_to(static_cast<std::int64_t>(sim_.events_executed()));
  registry_->counter(metrics::names::kEnginePoolSlots)
      .set_to(static_cast<std::int64_t>(sim_.pool_slots()));
  registry_->counter(metrics::names::kEnginePendingHighWater)
      .set_to(static_cast<std::int64_t>(sim_.pending_high_water()));
  registry_->counter(metrics::names::kSimTimeUs).set_to(sim_.now());
  if (attack != nullptr) {
    registry_->counter(metrics::names::kAttackBurstsTotal)
        .set_to(attack->scheduler().bursts_fired());
    registry_->counter(metrics::names::kAttackOnTimeUs)
        .set_to(attack->program().total_on_time());
  }
  registry_->counter(metrics::names::kLogMessagesTotal, {{"level", "warn"}})
      .set_to(log_counter_->warnings());
  registry_->counter(metrics::names::kLogMessagesTotal, {{"level", "error"}})
      .set_to(log_counter_->errors());
  if (flight_ != nullptr) {
    // Sketch quantiles become plain gauges: the run report (and fig10's
    // windowed tail stats) read latency quantiles from here without ever
    // touching a full client-latency vector.
    for (const double q : flightrec::QuantileSketch::kQuantiles) {
      registry_->gauge(metrics::names::kClientLatencySketchUs, {{"q", quantile_label(q)}})
          .set(flight_->client_latency().quantile(q));
    }
    for (std::size_t i = 0; i < system_->num_tiers(); ++i) {
      const std::string& name = system_->tier(i).name();
      registry_
          ->gauge(metrics::names::kTierResidenceSketchUs, {{"tier", name}, {"q", "p95"}})
          .set(flight_->tier_residence(i).quantile(0.95));
      registry_
          ->gauge(metrics::names::kTierResidenceSketchUs, {{"tier", name}, {"q", "p99"}})
          .set(flight_->tier_residence(i).quantile(0.99));
    }
    registry_->counter(metrics::names::kFlightrecIncidentsTotal)
        .set_to(flight_->incidents_total());
    registry_->counter(metrics::names::kFlightrecAffectedTotal)
        .set_to(flight_->affected_requests_total());
    // Self-profile: the volume the always-on observability plane processed
    // (multiply by BENCH_PR8.json per-op costs for the overhead estimate).
    std::int64_t sketch_samples = flight_->client_latency().count();
    for (std::size_t i = 0; i < system_->num_tiers(); ++i) {
      sketch_samples += flight_->tier_residence(i).count();
    }
    registry_->gauge(metrics::names::kEngineSelfprofile, {{"component", "sketch_samples"}})
        .set(static_cast<double>(sketch_samples));
    if (trace_ != nullptr) {
      registry_->gauge(metrics::names::kEngineSelfprofile, {{"component", "ring_events"}})
          .set(static_cast<double>(trace_->total_recorded()));
      registry_->gauge(metrics::names::kEngineSelfprofile, {{"component", "ring_bytes"}})
          .set(static_cast<double>(trace_->bytes_retained()));
    }
    registry_->gauge(metrics::names::kEngineSelfprofile, {{"component", "pinned_events"}})
        .set(static_cast<double>(flight_->pinned_events_total()));
  }
}

std::unique_ptr<metrics::Registry> RubbosTestbed::release_metrics() {
  if (scraper_ != nullptr) scraper_->stop();
  return std::move(registry_);
}

void RubbosTestbed::snapshot() {
  if (world_snapshot_ == nullptr) {
    world_snapshot_ = std::make_unique<snapshot::WorldSnapshot>();
    snapshot::WorldSnapshot& ws = *world_snapshot_;
    // The simulator first: everything else's EventHandles round-trip as
    // values and resolve against the arena occupancy it restores.
    ws.attach(sim_);
    for (auto& host : hosts_) ws.attach(*host);
    ws.attach(*coupling_);
    for (auto& neighbor : neighbors_) ws.attach(*neighbor);
    if (trace_ != nullptr) ws.attach(*trace_);
    if (flight_ != nullptr) ws.attach(*flight_);
    if (registry_ != nullptr) ws.attach(*registry_);
    if (scraper_ != nullptr) ws.attach(*scraper_);
    if (log_counter_ != nullptr) ws.attach(*log_counter_);
    ws.attach(*system_);
    // NTierSystem captures every tier's base state; the OLTP extension
    // (lock table, transaction lanes, sampler stream) attaches separately.
    if (oltp_tier_ != nullptr) ws.attach(*oltp_tier_);
    ws.attach(*router_);
    ws.attach(*clients_);
    ws.attach(*target_cpu_);
    for (auto& gauge : queue_gauges_) ws.attach(*gauge);
    ws.attach_value(util_probe_last_);
    ws.attach_value(started_);
  }
  world_snapshot_->capture();
}

void RubbosTestbed::rollback() {
  MEMCA_CHECK_MSG(has_snapshot(), "rollback() needs a prior snapshot()");
  MEMCA_CHECK_MSG(registry_ != nullptr || !config_.metrics,
                  "metrics registry was released; the snapshot references it");
  world_snapshot_->rollback();
}

std::vector<std::string> RubbosTestbed::tier_names() const {
  return {config_.apache.name, config_.tomcat.name, config_.mysql.name};
}

std::vector<core::TierModelParams> RubbosTestbed::model_params() const {
  // λ_i in the paper is the traffic *terminating* at tier i. In the RUBBoS
  // workload every request traverses all three tiers, so all legitimate
  // traffic terminates at MySQL: λ_mysql = N / Z (closed-loop approximation
  // with think time Z), upstream λ_i = 0.
  const double lambda =
      static_cast<double>(config_.num_users) / to_seconds(profile_.think_time_mean);
  auto capacity = [this](const queueing::TierConfig& tier, std::size_t index) {
    return static_cast<double>(tier.workers) * 1e6 / profile_.mean_demand_us(index);
  };
  std::vector<core::TierModelParams> params(3);
  params[0] = {static_cast<double>(config_.apache.threads), capacity(config_.apache, 0), 0.0};
  params[1] = {static_cast<double>(config_.tomcat.threads), capacity(config_.tomcat, 1), 0.0};
  params[2] = {static_cast<double>(config_.mysql.threads), capacity(config_.mysql, 2), lambda};
  return params;
}

}  // namespace memca::testbed
