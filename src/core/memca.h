// MemCA attack facade: wires MemCA-FE and MemCA-BE together (Fig. 8).
//
//   MemCA-FE (frontend) — runs in the co-located adversary VM: the memory
//     attack program plus the ON-OFF burst scheduler, reporting resource
//     consumption and execution windows.
//   MemCA-BE (backend) — runs anywhere with HTTP reach to the target: the
//     prober (lightweight requests measuring the victim's response time)
//     and the commander (feedback control of R, L, I).
//
// This is the library's main public entry point for launching the paper's
// attack against a simulated deployment:
//
//   MemcaAttack attack(sim, host, adversary_vm, router, config, rng);
//   attack.start();
//   sim.run_for(minutes);
//   report(attack.prober().observations(), attack.scheduler().bursts_fired());
#pragma once

#include <memory>

#include "cloud/attack_program.h"
#include "cloud/host.h"
#include "core/burst_scheduler.h"
#include "core/controller.h"
#include "core/params.h"
#include "workload/prober.h"
#include "workload/router.h"

namespace memca::core {

struct MemcaConfig {
  AttackParams params;
  AttackGoals goals;
  workload::ProberConfig prober;
  ControllerConfig controller;
  /// Run the feedback commander; if false, params stay fixed (the
  /// open-loop configuration used by most figure reproductions).
  bool enable_controller = true;
  /// Interval jitter for the burst scheduler (0 = strictly periodic).
  double interval_jitter = 0.0;
};

class MemcaAttack {
 public:
  /// `target_entry` is the router of the *target system* — the prober's
  /// requests enter through the same front tier as legitimate traffic.
  MemcaAttack(Simulator& sim, cloud::Host& host, cloud::VmId adversary_vm,
              workload::RequestRouter& target_entry, MemcaConfig config, Rng rng);

  void start();
  void stop();
  bool running() const { return running_; }

  cloud::MemoryAttackProgram& program() { return *program_; }
  const cloud::MemoryAttackProgram& program() const { return *program_; }
  BurstScheduler& scheduler() { return *scheduler_; }
  const BurstScheduler& scheduler() const { return *scheduler_; }
  workload::Prober& prober() { return *prober_; }
  /// Null when the controller is disabled.
  MemcaController* controller() { return controller_.get(); }

  const MemcaConfig& config() const { return config_; }

 private:
  MemcaConfig config_;
  bool running_ = false;
  std::unique_ptr<cloud::MemoryAttackProgram> program_;
  std::unique_ptr<BurstScheduler> scheduler_;
  std::unique_ptr<workload::Prober> prober_;
  std::unique_ptr<MemcaController> controller_;
};

}  // namespace memca::core
