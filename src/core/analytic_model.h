// The paper's queueing-network attack model (Section IV-B, Eq. 2–10).
//
// Given per-tier queue sizes Q_i, OFF capacities C_i,OFF, legitimate
// arrival rates λ_i, and the attack parameters (D, L, I), the model
// predicts the three stages of each burst:
//
//   build-up:  l_{n,UP} = Q_n / (λ_n − C_{n,ON})                    (Eq. 4)
//              l_{i,UP} = (Q_i − Q_{i+1}) / (Σ_{j≥i} λ_j − C_{n,ON}) (Eq. 5/6)
//   hold-on:   P_D = L − Σ l_{i,UP}                                 (Eq. 7)
//              ρ   = P_D / I                                        (Eq. 8)
//   fade-off:  l_{n,DOWN} = Q_n / (C_{n,OFF} − λ_n)                 (Eq. 9)
//              P_MB = L + l_{n,DOWN}                                (Eq. 10)
//
// Conditions: (1) Q_1 > Q_2 > … > Q_n; (2) λ_n > C_{n,ON}.
//
// Tier index 0 is the front-most tier (Apache), index n-1 the back-most
// (MySQL) — the attacked/bottleneck tier.
#pragma once

#include <vector>

#include "common/time.h"

namespace memca::core {

struct TierModelParams {
  /// Queue size Q_i: concurrency limit (threads/connections).
  double queue_size = 100.0;
  /// Capacity C_{i,OFF}: requests/second when unattacked.
  double capacity_off = 1000.0;
  /// Legitimate arrival rate λ_i entering at this tier, requests/second.
  /// (In a web-facing n-tier system all traffic enters at the front, so
  /// typically λ_0 = λ and λ_{i>0} = λ as the same requests pass through;
  /// the model follows the paper and sums rates cumulatively.)
  double arrival_rate = 500.0;
};

struct AttackModelInputs {
  std::vector<TierModelParams> tiers;
  /// Degradation index D (Eq. 2): C_{n,ON} = D · C_{n,OFF}.
  double degradation_index = 0.1;
  /// Burst length L.
  SimTime burst_length = msec(100);
  /// Burst interval I.
  SimTime burst_interval = sec(std::int64_t{2});
};

struct AttackModelOutputs {
  /// C_{n,ON} (Eq. 3), requests/second.
  double capacity_on = 0.0;
  /// Condition 1: strictly decreasing queue sizes front → back.
  bool condition1 = false;
  /// Condition 2: λ_n > C_{n,ON} (the burst actually overwhelms tier n).
  bool condition2 = false;
  /// l_{i,UP} per tier (index 0 = front); +inf entries mean "never fills".
  std::vector<double> fill_time_s;
  /// Σ l_{i,UP} over tiers that fill within the burst.
  double total_fill_time_s = 0.0;
  /// Damage period P_D (Eq. 7), seconds; 0 if the queues never all fill.
  double damage_period_s = 0.0;
  /// Damage ratio ρ = P_D / I (Eq. 8).
  double rho = 0.0;
  /// l_{n,DOWN} (Eq. 9), seconds.
  double drain_time_s = 0.0;
  /// Millibottleneck period P_MB (Eq. 10), seconds.
  double millibottleneck_s = 0.0;
};

/// Degradation index D = (R_max − R) / R_max (Eq. 2): the capacity fraction
/// that *survives* the attack; R is the attack's resource consumption and
/// R_max the host's peak.
double degradation_index(double attack_rate, double peak_rate);

/// Evaluates the model. Aborts on ill-formed inputs (empty tiers,
/// non-positive rates, D outside (0, 1]).
AttackModelOutputs evaluate_attack_model(const AttackModelInputs& inputs);

/// Inverse use (Section IV-B "Relationship between Attack Parameters and
/// Impact"): the burst length L needed to reach damage ratio `rho` at
/// interval I given the fill/drain structure in `inputs` (whose L is
/// ignored). Returns 0 if unreachable (conditions violated).
SimTime required_burst_length(const AttackModelInputs& inputs, double rho);

/// Predicted fraction of client requests that experience TCP-retransmission
/// latency: requests arriving during the hold-on stage of a burst are
/// dropped, so the fraction ≈ ρ. With a 1 s minimum RTO this directly
/// bounds the achievable percentile: quantiles above (1 − ρ) exceed 1 s.
double predicted_drop_fraction(const AttackModelOutputs& outputs);

}  // namespace memca::core
