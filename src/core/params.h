// MemCA attack parameters and goals (Section IV-A).
//
// The paper formalises the attack as Effect = A(R, L, I):
//   R — intensity of resource consumption per burst,
//   L — burst length (must be short enough to dodge coarse monitors),
//   I — interval between consecutive bursts (sets attack frequency).
#pragma once

#include "cloud/attack_program.h"
#include "common/time.h"

namespace memca::core {

struct AttackParams {
  /// Burst intensity R, in (0, 1]: scales the attack program's pressure.
  double intensity = 1.0;
  /// Burst length L.
  SimTime burst_length = msec(500);
  /// Interval I between burst starts.
  SimTime burst_interval = sec(std::int64_t{2});
  /// Which memory attack kernel to run during ON windows.
  cloud::MemoryAttackType type = cloud::MemoryAttackType::kMemoryLock;

  /// Duty cycle L / I of the ON-OFF pattern.
  double duty_cycle() const {
    return static_cast<double>(burst_length) / static_cast<double>(burst_interval);
  }
};

struct AttackGoals {
  /// Damage goal: the `damage_quantile` response time should exceed
  /// `damage_target` (paper: 95th percentile > 1 s).
  double damage_quantile = 0.95;
  SimTime damage_target = sec(std::int64_t{1});
  /// Stealth goal: each millibottleneck must stay below this bound
  /// (paper: sub-second, under the monitors' granularity).
  SimTime stealth_bound = sec(std::int64_t{1});
};

/// Bounds the controller must respect while tuning parameters.
struct ParamBounds {
  double min_intensity = 0.1;
  double max_intensity = 1.0;
  SimTime min_burst_length = msec(50);
  SimTime max_burst_length = msec(900);
  SimTime min_interval = sec(std::int64_t{1});
  SimTime max_interval = sec(std::int64_t{10});
};

}  // namespace memca::core
