#include "core/memca.h"

#include "common/check.h"

namespace memca::core {

MemcaAttack::MemcaAttack(Simulator& sim, cloud::Host& host, cloud::VmId adversary_vm,
                         workload::RequestRouter& target_entry, MemcaConfig config, Rng rng)
    : config_(std::move(config)) {
  program_ = std::make_unique<cloud::MemoryAttackProgram>(
      sim, host, adversary_vm, config_.params.type, config_.params.intensity);
  scheduler_ = std::make_unique<BurstScheduler>(sim, *program_, config_.params,
                                                rng.fork("burst-scheduler"),
                                                config_.interval_jitter);
  prober_ = std::make_unique<workload::Prober>(sim, target_entry, config_.prober,
                                               rng.fork("prober"));
  if (config_.enable_controller) {
    controller_ = std::make_unique<MemcaController>(sim, *scheduler_, *prober_,
                                                    config_.goals, config_.controller);
  }
}

void MemcaAttack::start() {
  if (running_) return;
  running_ = true;
  prober_->start();
  scheduler_->start();
  if (controller_) controller_->start();
}

void MemcaAttack::stop() {
  if (!running_) return;
  running_ = false;
  if (controller_) controller_->stop();
  scheduler_->stop();
  prober_->stop();
}

}  // namespace memca::core
