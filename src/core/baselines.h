// Baseline attacks MemCA is compared against.
//
//  * BruteForceMemoryAttack — the prior art (Zhang et al., ASIA CCS'17):
//    the same memory kernels, but running continuously. Maximum damage,
//    but the sustained saturation is exactly what coarse monitors and
//    auto-scaling catch.
//  * FloodingAttack — a traditional application-level (HTTP) flood: an
//    open-loop stream of expensive requests. Effective, but the traffic
//    volume itself is the giveaway (request-rate anomaly detection) and
//    elastic scaling absorbs it.
//
// The ablation_baselines bench runs all three through the same damage and
// stealth metrics.
#pragma once

#include <memory>

#include "cloud/attack_program.h"
#include "cloud/host.h"
#include "workload/openloop.h"
#include "workload/router.h"

namespace memca::core {

class BruteForceMemoryAttack {
 public:
  BruteForceMemoryAttack(Simulator& sim, cloud::Host& host, cloud::VmId adversary_vm,
                         cloud::MemoryAttackType type, double intensity = 1.0);

  void start() { program_->start(); }
  void stop() { program_->stop(); }
  bool running() const { return program_->running(); }
  cloud::MemoryAttackProgram& program() { return *program_; }

 private:
  std::unique_ptr<cloud::MemoryAttackProgram> program_;
};

class FloodingAttack {
 public:
  /// Floods the target with `rate_per_sec` requests of the profile's
  /// heaviest page class.
  FloodingAttack(Simulator& sim, workload::RequestRouter& target, double rate_per_sec,
                 const workload::WorkloadProfile& victim_profile, Rng rng);

  void start() { source_->start(); }
  void stop() { source_->stop(); }
  workload::OpenLoopSource& source() { return *source_; }

 private:
  std::unique_ptr<workload::OpenLoopSource> source_;
};

}  // namespace memca::core
