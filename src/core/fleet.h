// Multi-VM adversary fleet (Section II-B: "one or a few adversary VMs").
//
// Coordinates the same ON-OFF attack across several co-located adversary
// VMs. Two coordination modes:
//   * kSynchronized — all VMs burst together. Lock duties compose as
//     1 - Π(1 - d_i), so even two lockers push the combined duty to
//     ~99.75% and the degradation index to its floor: deeper damage per
//     burst at unchanged per-VM footprint.
//   * kStaggered — VMs burst in round-robin phase offsets of I/N. Each
//     VM's ON-time is unchanged but the *victim* sees N times as many
//     millibottlenecks per interval — equivalent to I' = I/N without any
//     single VM looking more active.
//
// The fleet is the natural escalation beyond the single-VM attack once a
// defender starts per-VM anomaly scoring.
#pragma once

#include <memory>
#include <vector>

#include "cloud/attack_program.h"
#include "core/burst_scheduler.h"
#include "core/params.h"

namespace memca::core {

enum class FleetPhase {
  kSynchronized,
  kStaggered,
};

const char* to_string(FleetPhase phase);

class AdversaryFleet {
 public:
  /// One attack program per adversary VM, all driven with `params`.
  AdversaryFleet(Simulator& sim, cloud::Host& host, std::vector<cloud::VmId> adversary_vms,
                 AttackParams params, FleetPhase phase, Rng rng);
  AdversaryFleet(const AdversaryFleet&) = delete;
  AdversaryFleet& operator=(const AdversaryFleet&) = delete;

  /// Starts every member (staggered members start at their phase offset).
  void start();
  void stop();

  std::size_t size() const { return programs_.size(); }
  FleetPhase phase() const { return phase_; }
  cloud::MemoryAttackProgram& program(std::size_t i);
  BurstScheduler& scheduler(std::size_t i);

  /// Total ON-time across the fleet (the aggregate footprint).
  SimTime total_on_time() const;
  /// Largest single-VM ON-time (what a per-VM anomaly scorer sees).
  SimTime max_member_on_time() const;
  std::int64_t bursts_fired() const;

 private:
  Simulator& sim_;
  FleetPhase phase_;
  AttackParams params_;
  std::vector<std::unique_ptr<cloud::MemoryAttackProgram>> programs_;
  std::vector<std::unique_ptr<BurstScheduler>> schedulers_;
  std::vector<EventHandle> pending_starts_;
  bool running_ = false;
};

}  // namespace memca::core
