#include "core/burst_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace memca::core {

BurstScheduler::BurstScheduler(Simulator& sim, cloud::MemoryAttackProgram& program,
                               AttackParams params, Rng rng, double interval_jitter)
    : sim_(sim), program_(program), params_(params), rng_(std::move(rng)),
      jitter_(interval_jitter) {
  MEMCA_CHECK_MSG(params_.burst_length > 0, "burst length must be positive");
  MEMCA_CHECK_MSG(params_.burst_interval > params_.burst_length,
                  "interval must exceed burst length (ON-OFF pattern)");
  MEMCA_CHECK_MSG(jitter_ >= 0.0 && jitter_ < 1.0, "jitter must be in [0, 1)");
}

BurstScheduler::~BurstScheduler() { stop(); }

void BurstScheduler::start() {
  if (running_) return;
  running_ = true;
  fire_burst();
}

void BurstScheduler::stop() {
  running_ = false;
  next_burst_.cancel();
  burst_end_.cancel();
  if (program_.running()) program_.stop();
}

void BurstScheduler::set_params(AttackParams params) {
  MEMCA_CHECK_MSG(params.burst_length > 0, "burst length must be positive");
  MEMCA_CHECK_MSG(params.burst_interval > params.burst_length,
                  "interval must exceed burst length");
  params_ = params;
}

void BurstScheduler::fire_burst() {
  if (!running_) return;
  ++bursts_;
  program_.set_type(params_.type);
  program_.set_intensity(params_.intensity);
  program_.start();
  burst_end_ = sim_.schedule_in(params_.burst_length, [this] {
    if (program_.running()) program_.stop();
  });
  schedule_next();
}

void BurstScheduler::schedule_next() {
  SimTime interval = params_.burst_interval;
  if (jitter_ > 0.0) {
    const double factor = rng_.uniform(1.0 - jitter_, 1.0 + jitter_);
    interval = static_cast<SimTime>(static_cast<double>(interval) * factor);
    interval = std::max(interval, params_.burst_length + kMillisecond);
  }
  next_burst_ = sim_.schedule_in(interval, [this] { fire_burst(); });
}

}  // namespace memca::core
