#include "core/fleet.h"

#include <algorithm>

#include "common/check.h"

namespace memca::core {

const char* to_string(FleetPhase phase) {
  switch (phase) {
    case FleetPhase::kSynchronized:
      return "synchronized";
    case FleetPhase::kStaggered:
      return "staggered";
  }
  return "?";
}

AdversaryFleet::AdversaryFleet(Simulator& sim, cloud::Host& host,
                               std::vector<cloud::VmId> adversary_vms, AttackParams params,
                               FleetPhase phase, Rng rng)
    : sim_(sim), phase_(phase), params_(params) {
  MEMCA_CHECK_MSG(!adversary_vms.empty(), "a fleet needs at least one adversary VM");
  for (std::size_t i = 0; i < adversary_vms.size(); ++i) {
    programs_.push_back(std::make_unique<cloud::MemoryAttackProgram>(
        sim, host, adversary_vms[i], params.type, params.intensity));
    schedulers_.push_back(std::make_unique<BurstScheduler>(
        sim, *programs_.back(), params,
        rng.fork("fleet-member-" + std::to_string(i))));
  }
}

void AdversaryFleet::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < schedulers_.size(); ++i) {
    SimTime offset = 0;
    if (phase_ == FleetPhase::kStaggered) {
      offset = static_cast<SimTime>(i) * params_.burst_interval /
               static_cast<SimTime>(schedulers_.size());
    }
    if (offset == 0) {
      schedulers_[i]->start();
    } else {
      BurstScheduler* scheduler = schedulers_[i].get();
      pending_starts_.push_back(sim_.schedule_in(offset, [this, scheduler] {
        if (running_) scheduler->start();
      }));
    }
  }
}

void AdversaryFleet::stop() {
  running_ = false;
  for (EventHandle& handle : pending_starts_) handle.cancel();
  pending_starts_.clear();
  for (auto& scheduler : schedulers_) scheduler->stop();
}

cloud::MemoryAttackProgram& AdversaryFleet::program(std::size_t i) {
  MEMCA_CHECK(i < programs_.size());
  return *programs_[i];
}

BurstScheduler& AdversaryFleet::scheduler(std::size_t i) {
  MEMCA_CHECK(i < schedulers_.size());
  return *schedulers_[i];
}

SimTime AdversaryFleet::total_on_time() const {
  SimTime total = 0;
  for (const auto& program : programs_) total += program->total_on_time();
  return total;
}

SimTime AdversaryFleet::max_member_on_time() const {
  SimTime max_time = 0;
  for (const auto& program : programs_) {
    max_time = std::max(max_time, program->total_on_time());
  }
  return max_time;
}

std::int64_t AdversaryFleet::bursts_fired() const {
  std::int64_t total = 0;
  for (const auto& scheduler : schedulers_) total += scheduler->bursts_fired();
  return total;
}

}  // namespace memca::core
