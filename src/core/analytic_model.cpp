#include "core/analytic_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace memca::core {

double degradation_index(double attack_rate, double peak_rate) {
  MEMCA_CHECK_MSG(peak_rate > 0.0, "peak rate must be positive");
  MEMCA_CHECK_MSG(attack_rate >= 0.0 && attack_rate <= peak_rate,
                  "attack rate must be within [0, peak]");
  return (peak_rate - attack_rate) / peak_rate;
}

namespace {

void validate(const AttackModelInputs& in) {
  MEMCA_CHECK_MSG(!in.tiers.empty(), "model needs at least one tier");
  for (const TierModelParams& t : in.tiers) {
    MEMCA_CHECK_MSG(t.queue_size > 0.0, "queue sizes must be positive");
    MEMCA_CHECK_MSG(t.capacity_off > 0.0, "capacities must be positive");
    MEMCA_CHECK_MSG(t.arrival_rate >= 0.0, "arrival rates must be non-negative");
  }
  MEMCA_CHECK_MSG(in.degradation_index > 0.0 && in.degradation_index <= 1.0,
                  "degradation index must be in (0, 1]");
  MEMCA_CHECK_MSG(in.burst_length > 0, "burst length must be positive");
  MEMCA_CHECK_MSG(in.burst_interval > 0, "burst interval must be positive");
}

/// Computes the per-tier fill times (front = index 0) and their sum over
/// tiers that actually fill. Entries are +inf where the fill rate is <= 0.
std::vector<double> fill_times(const AttackModelInputs& in, double capacity_on) {
  const std::size_t n = in.tiers.size();
  std::vector<double> out(n, std::numeric_limits<double>::infinity());
  // Cumulative arrival rate from tier i to the back: Σ_{j>=i} λ_j.
  std::vector<double> cumulative(n, 0.0);
  double acc = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    acc += in.tiers[i].arrival_rate;
    cumulative[i] = acc;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double slots = (i + 1 < n) ? in.tiers[i].queue_size - in.tiers[i + 1].queue_size
                                     : in.tiers[i].queue_size;
    const double fill_rate = cumulative[i] - capacity_on;
    if (slots <= 0.0) {
      out[i] = 0.0;  // degenerate Condition-1 violation: no extra slots
      continue;
    }
    if (fill_rate > 0.0) out[i] = slots / fill_rate;
  }
  return out;
}

}  // namespace

AttackModelOutputs evaluate_attack_model(const AttackModelInputs& in) {
  validate(in);
  AttackModelOutputs out;
  const TierModelParams& bottleneck = in.tiers.back();
  out.capacity_on = in.degradation_index * bottleneck.capacity_off;  // Eq. 3

  out.condition1 = true;
  for (std::size_t i = 0; i + 1 < in.tiers.size(); ++i) {
    if (in.tiers[i].queue_size <= in.tiers[i + 1].queue_size) out.condition1 = false;
  }
  out.condition2 = bottleneck.arrival_rate > out.capacity_on;

  out.fill_time_s = fill_times(in, out.capacity_on);

  const double L = to_seconds(in.burst_length);
  const double I = to_seconds(in.burst_interval);

  // Queues fill back-to-front; the damage period starts once the front-most
  // queue is full (Eq. 7). If the cumulative fill time exceeds L, hold-on is
  // never reached and P_D = 0.
  double total = 0.0;
  bool all_fill = true;
  for (double t : out.fill_time_s) {
    if (!std::isfinite(t)) {
      all_fill = false;
      break;
    }
    total += t;
  }
  out.total_fill_time_s = all_fill ? total : std::numeric_limits<double>::infinity();
  if (all_fill && total < L) {
    out.damage_period_s = L - total;  // Eq. 7
  } else {
    out.damage_period_s = 0.0;
  }
  out.rho = out.damage_period_s / I;  // Eq. 8

  // Fade-off (Eq. 9): only defined when the OFF capacity exceeds the load.
  const double drain_rate = bottleneck.capacity_off - bottleneck.arrival_rate;
  if (drain_rate > 0.0) {
    out.drain_time_s = bottleneck.queue_size / drain_rate;
  } else {
    out.drain_time_s = std::numeric_limits<double>::infinity();
  }
  out.millibottleneck_s = L + out.drain_time_s;  // Eq. 10
  return out;
}

SimTime required_burst_length(const AttackModelInputs& inputs, double rho) {
  MEMCA_CHECK_MSG(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  AttackModelInputs probe = inputs;
  probe.burst_length = kSecond;  // placeholder; we only need the fill times
  const AttackModelOutputs out = evaluate_attack_model(probe);
  if (!out.condition2 || !std::isfinite(out.total_fill_time_s)) return 0;
  const double needed_s = rho * to_seconds(inputs.burst_interval) + out.total_fill_time_s;
  return static_cast<SimTime>(std::ceil(needed_s * static_cast<double>(kSecond)));
}

double predicted_drop_fraction(const AttackModelOutputs& outputs) {
  return std::clamp(outputs.rho, 0.0, 1.0);
}

}  // namespace memca::core
