// Scalar Kalman filter (Kalman 1960), used by the MemCA commander to track
// the noisy percentile-response-time signal coming off the prober without
// over-reacting to single-burst variance (Section IV-C).
#pragma once

namespace memca::core {

class KalmanFilter1D {
 public:
  /// `process_variance` (q): how fast the true state drifts per step.
  /// `measurement_variance` (r): sensor noise.
  /// `initial_estimate` / `initial_variance`: prior.
  KalmanFilter1D(double process_variance, double measurement_variance,
                 double initial_estimate = 0.0, double initial_variance = 1.0);

  /// Incorporates one measurement; returns the posterior estimate.
  double update(double measurement);

  double estimate() const { return estimate_; }
  double variance() const { return variance_; }
  /// The most recent Kalman gain (diagnostic; in [0, 1]).
  double gain() const { return gain_; }
  /// Number of measurements incorporated.
  long updates() const { return updates_; }

 private:
  double q_;
  double r_;
  double estimate_;
  double variance_;
  double gain_ = 0.0;
  long updates_ = 0;
};

}  // namespace memca::core
