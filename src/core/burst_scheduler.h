// ON-OFF burst scheduler (Fig. 4): drives the attack program.
//
// Fires the attack kernel for L every I, optionally with jitter on the
// interval (jitter makes the ON-OFF pattern aperiodic, defeating the
// periodicity detector at a small cost in analytic predictability — an
// extension explored in the ablation benches).
#pragma once

#include <memory>

#include "cloud/attack_program.h"
#include "common/rng.h"
#include "core/params.h"
#include "sim/simulator.h"

namespace memca::core {

class BurstScheduler {
 public:
  /// `interval_jitter` in [0, 1): each interval is drawn uniformly from
  /// I * [1 - j, 1 + j].
  BurstScheduler(Simulator& sim, cloud::MemoryAttackProgram& program, AttackParams params,
                 Rng rng, double interval_jitter = 0.0);
  ~BurstScheduler();
  BurstScheduler(const BurstScheduler&) = delete;
  BurstScheduler& operator=(const BurstScheduler&) = delete;

  /// Starts the ON-OFF pattern; the first burst fires immediately.
  void start();
  /// Stops scheduling; an in-progress burst is terminated.
  void stop();
  bool running() const { return running_; }

  /// Parameter updates take effect from the next burst.
  void set_params(AttackParams params);
  const AttackParams& params() const { return params_; }

  std::int64_t bursts_fired() const { return bursts_; }

  /// The attack program this scheduler drives (MemCA-FE telemetry source).
  const cloud::MemoryAttackProgram& program() const { return program_; }

 private:
  void fire_burst();
  void schedule_next();

  Simulator& sim_;
  cloud::MemoryAttackProgram& program_;
  AttackParams params_;
  Rng rng_;
  double jitter_;
  bool running_ = false;
  std::int64_t bursts_ = 0;
  EventHandle next_burst_;
  EventHandle burst_end_;
};

}  // namespace memca::core
