#include "core/controller.h"

#include <algorithm>

#include "common/check.h"

namespace memca::core {

MemcaController::MemcaController(Simulator& sim, BurstScheduler& scheduler,
                                 workload::Prober& prober, AttackGoals goals,
                                 ControllerConfig config)
    : sim_(sim),
      scheduler_(scheduler),
      prober_(prober),
      goals_(goals),
      config_(config),
      filter_(config.process_variance, config.measurement_variance,
              /*initial_estimate=*/0.0, /*initial_variance=*/1e12) {
  MEMCA_CHECK_MSG(config_.epoch > 0, "control epoch must be positive");
  MEMCA_CHECK_MSG(goals_.damage_quantile > 0.0 && goals_.damage_quantile < 1.0,
                  "damage quantile must be in (0, 1)");
}

void MemcaController::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "controller already started");
  task_ = std::make_unique<PeriodicTask>(sim_, config_.epoch, [this] { control_epoch(); });
}

void MemcaController::stop() {
  if (task_) task_->stop();
}

SimTime MemcaController::filtered_rt() const {
  return static_cast<SimTime>(filter_.estimate());
}

bool MemcaController::goal_met() const {
  if (history_.empty()) return false;
  return history_.back().damage_ok && history_.back().stealth_ok;
}

SimTime MemcaController::stealth_estimate() const {
  // MemCA-FE reports the attack program's execution windows; the commander
  // takes the longest window observed this epoch and applies a safety
  // factor for the fade-off drain the attacker cannot observe. Before any
  // window completes, fall back to the configured burst length.
  const auto& windows = scheduler_.program().windows();
  SimTime observed = scheduler_.params().burst_length;
  const SimTime epoch_start = sim_.now() - config_.epoch;
  for (auto it = windows.rbegin(); it != windows.rend() && it->end >= epoch_start; ++it) {
    observed = std::max(observed, it->length());
  }
  return static_cast<SimTime>(static_cast<double>(observed) * config_.stealth_safety);
}

void MemcaController::escalate(AttackParams& p) const {
  const ParamBounds& b = config_.bounds;
  // Escalation ladder: intensity first (cheapest, least visible), then
  // burst length (bounded by stealth), then frequency.
  if (p.intensity + 1e-9 < b.max_intensity) {
    p.intensity = std::min(b.max_intensity, p.intensity + config_.intensity_step);
    return;
  }
  const auto stealth_cap = static_cast<SimTime>(
      static_cast<double>(goals_.stealth_bound) / config_.stealth_safety);
  const SimTime max_len = std::min(b.max_burst_length, stealth_cap);
  if (p.burst_length < max_len) {
    auto grown = static_cast<SimTime>(static_cast<double>(p.burst_length) *
                                      config_.length_growth);
    p.burst_length = std::clamp(grown, b.min_burst_length, max_len);
    return;
  }
  if (p.burst_interval > b.min_interval) {
    auto shrunk = static_cast<SimTime>(static_cast<double>(p.burst_interval) *
                                       config_.interval_shrink);
    p.burst_interval = std::max({shrunk, b.min_interval, p.burst_length + kMillisecond});
  }
}

void MemcaController::control_epoch() {
  EpochRecord rec;
  rec.time = sim_.now();
  rec.measured_rt =
      prober_.quantile_in_window(goals_.damage_quantile, config_.measure_window);
  rec.filtered_rt = static_cast<SimTime>(
      filter_.update(static_cast<double>(rec.measured_rt)));
  rec.stealth_estimate = stealth_estimate();

  AttackParams p = scheduler_.params();
  rec.damage_ok = rec.filtered_rt >= goals_.damage_target;
  rec.stealth_ok = rec.stealth_estimate <= goals_.stealth_bound;

  const ParamBounds& b = config_.bounds;
  if (!rec.stealth_ok) {
    // Stealth first: shrink the burst until the FE estimate fits the bound.
    auto shrunk = static_cast<SimTime>(static_cast<double>(p.burst_length) *
                                       config_.length_backoff);
    p.burst_length = std::max(shrunk, b.min_burst_length);
  } else if (!rec.damage_ok) {
    escalate(p);
  } else if (rec.filtered_rt >
             static_cast<SimTime>(static_cast<double>(goals_.damage_target) *
                                  config_.overshoot_margin)) {
    // Comfortably above goal: trade damage for stealth by spacing bursts.
    auto relaxed = static_cast<SimTime>(static_cast<double>(p.burst_interval) *
                                        config_.interval_relax);
    p.burst_interval = std::min(relaxed, b.max_interval);
  }
  p.burst_interval = std::max(p.burst_interval, p.burst_length + kMillisecond);

  rec.params = p;
  scheduler_.set_params(p);
  history_.push_back(rec);
}

}  // namespace memca::core
