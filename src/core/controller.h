// The MemCA commander (MemCA-BE, Section IV-C).
//
// The attacker cannot see the target's internal parameters (service times,
// utilizations, thread-pool sizes), so the commander closes the loop purely
// on what the adversary can observe:
//   * damage — percentile response time of the prober's lightweight HTTP
//     requests, smoothed by a scalar Kalman filter;
//   * stealth — the attack program's own execution-window lengths (the
//     conservative millibottleneck estimate of MemCA-FE).
//
// Each control epoch, the commander escalates (intensity → burst length →
// burst frequency) while the damage goal is unmet, backs burst length off
// whenever the stealth estimate breaches its bound, and relaxes frequency
// when damage overshoots — keeping the attack just above its goal with the
// smallest observable footprint.
#pragma once

#include <memory>
#include <vector>

#include "core/burst_scheduler.h"
#include "core/kalman.h"
#include "core/params.h"
#include "sim/simulator.h"
#include "workload/prober.h"

namespace memca::core {

struct ControllerConfig {
  /// Control epoch: how often parameters are re-evaluated.
  SimTime epoch = sec(std::int64_t{10});
  /// Window over which the prober percentile is computed. Longer than the
  /// epoch so the closed-loop workload's self-throttling oscillation (damage
  /// -> clients back off -> system recovers) is averaged out.
  SimTime measure_window = sec(std::int64_t{30});
  ParamBounds bounds;
  /// Kalman filter tuning for the percentile-RT signal (microseconds²).
  double process_variance = 1e10;      // allow ~100 ms drift per epoch
  double measurement_variance = 4e10;  // ~200 ms sensor noise
  /// Additive intensity escalation step.
  double intensity_step = 0.15;
  /// Multiplicative burst-length / interval steps.
  double length_growth = 1.25;
  double length_backoff = 0.80;
  double interval_shrink = 0.80;
  double interval_relax = 1.15;
  /// Damage overshoot margin that triggers de-escalation.
  double overshoot_margin = 1.8;
  /// Safety factor applied to the execution-time stealth estimate to leave
  /// headroom for the fade-off drain the attacker cannot observe.
  double stealth_safety = 1.2;
};

struct EpochRecord {
  SimTime time = 0;
  /// Raw prober percentile over the epoch.
  SimTime measured_rt = 0;
  /// Kalman-filtered percentile.
  SimTime filtered_rt = 0;
  /// Conservative millibottleneck estimate (exec window × safety).
  SimTime stealth_estimate = 0;
  AttackParams params;
  bool damage_ok = false;
  bool stealth_ok = false;
};

class MemcaController {
 public:
  MemcaController(Simulator& sim, BurstScheduler& scheduler, workload::Prober& prober,
                  AttackGoals goals, ControllerConfig config = {});
  MemcaController(const MemcaController&) = delete;
  MemcaController& operator=(const MemcaController&) = delete;

  void start();
  void stop();

  /// Kalman-filtered percentile response time, microseconds.
  SimTime filtered_rt() const;
  /// True when the last epoch met both damage and stealth goals.
  bool goal_met() const;
  int epochs() const { return static_cast<int>(history_.size()); }
  const std::vector<EpochRecord>& history() const { return history_; }
  const AttackGoals& goals() const { return goals_; }

 private:
  void control_epoch();
  SimTime stealth_estimate() const;
  void escalate(AttackParams& p) const;

  Simulator& sim_;
  BurstScheduler& scheduler_;
  workload::Prober& prober_;
  AttackGoals goals_;
  ControllerConfig config_;
  KalmanFilter1D filter_;
  std::unique_ptr<PeriodicTask> task_;
  std::vector<EpochRecord> history_;
  std::size_t windows_seen_ = 0;
};

}  // namespace memca::core
