#include "core/baselines.h"

#include <algorithm>

#include "common/check.h"

namespace memca::core {

BruteForceMemoryAttack::BruteForceMemoryAttack(Simulator& sim, cloud::Host& host,
                                               cloud::VmId adversary_vm,
                                               cloud::MemoryAttackType type,
                                               double intensity)
    : program_(std::make_unique<cloud::MemoryAttackProgram>(sim, host, adversary_vm, type,
                                                            intensity)) {}

FloodingAttack::FloodingAttack(Simulator& sim, workload::RequestRouter& target,
                               double rate_per_sec,
                               const workload::WorkloadProfile& victim_profile, Rng rng) {
  MEMCA_CHECK_MSG(rate_per_sec > 0.0, "flood rate must be positive");
  // Single-page profile of the victim's most expensive page: the classic
  // "heavy URL" application-layer flood.
  std::size_t heaviest = 0;
  double heaviest_back = 0.0;
  for (std::size_t i = 0; i < victim_profile.pages.size(); ++i) {
    const double back = victim_profile.pages[i].demand_mean_us.back();
    if (back > heaviest_back) {
      heaviest_back = back;
      heaviest = i;
    }
  }
  workload::WorkloadProfile flood =
      workload::uniform_profile(victim_profile.pages[heaviest].demand_mean_us);
  workload::OpenLoopConfig config;
  config.rate_per_sec = rate_per_sec;
  config.retransmit = false;  // bots do not care about lost requests
  source_ = std::make_unique<workload::OpenLoopSource>(sim, target, std::move(flood), config,
                                                       rng.fork("flood"));
}

}  // namespace memca::core
