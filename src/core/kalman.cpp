#include "core/kalman.h"

#include "common/check.h"

namespace memca::core {

KalmanFilter1D::KalmanFilter1D(double process_variance, double measurement_variance,
                               double initial_estimate, double initial_variance)
    : q_(process_variance),
      r_(measurement_variance),
      estimate_(initial_estimate),
      variance_(initial_variance) {
  MEMCA_CHECK_MSG(q_ >= 0.0, "process variance must be non-negative");
  MEMCA_CHECK_MSG(r_ > 0.0, "measurement variance must be positive");
  MEMCA_CHECK_MSG(initial_variance >= 0.0, "initial variance must be non-negative");
}

double KalmanFilter1D::update(double measurement) {
  // Predict: the state is modelled as a random walk.
  variance_ += q_;
  // Update.
  gain_ = variance_ / (variance_ + r_);
  estimate_ += gain_ * (measurement - estimate_);
  variance_ *= (1.0 - gain_);
  ++updates_;
  return estimate_;
}

}  // namespace memca::core
